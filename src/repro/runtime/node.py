"""The Hamband node runtime (paper §4).

Each node hosts:

- the stored state ``σ`` and the applied-calls map ``A``,
- one **F ring** per peer (irreducible conflict-free calls from that
  peer), one **L ring** per synchronization group (conflicting calls,
  written by the group's leader through Mu), and one **summary slot**
  per (summarization group, process),
- a heartbeat thread and a failure detector over remote reads,
- a reliable-broadcast endpoint (backup slot),
- one Mu consensus endpoint per synchronization group,
- traversal threads that apply buffered calls whose dependency arrays
  are satisfied,
- a control-plane listener for the (rare) leader-change messages.

Request processing follows the paper's four cases: queries run locally;
reducible calls are summarized and remotely overwritten; irreducible
conflict-free calls are applied locally and reliably broadcast into F
rings; conflicting calls are ordered by the group leader through Mu
into L rings.

Every issue/apply also appends a :class:`~repro.core.ConcreteEvent` to
the cluster log, so integration tests replay entire runs against the
abstract semantics (the runtime refines the machine that refines the
spec).
"""

from __future__ import annotations

import itertools
import struct
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

from ..consensus.mu import MuConfig, MuGroup
from ..core import Call, Category, ConcreteEvent, Coordination
from ..core.rdma_semantics import DependencyMap
from ..rdma import RdmaNode
from ..sim import Environment, Event, Store
from .broadcast import ReliableBroadcast
from .heartbeat import FailureDetector, Heartbeat
from .ringbuffer import RingError, RingReader, RingWriter
from .summary import (
    SummarySlot,
    current_record_bytes,
    render_summary,
    slot_size_for,
)
from .wire import (
    decode_call_batch,
    decode_call_packet,
    decode_value,
    encode_call_batch,
    encode_call_packet,
    encode_value,
)

__all__ = [
    "HambandNode",
    "ImpermissibleError",
    "NotLeaderError",
    "RuntimeConfig",
    "SubmitError",
]


class SubmitError(Exception):
    """A request this node cannot serve."""


class NotLeaderError(SubmitError):
    """Conflicting call submitted to a non-leader; redirect to ``leader``."""

    def __init__(self, method: str, leader: str):
        super().__init__(f"{method} must go to leader {leader}")
        self.leader = leader


class ImpermissibleError(SubmitError):
    """The call violates the invariant and was rejected (or timed out
    waiting for its dependencies to arrive)."""


@dataclass
class RuntimeConfig:
    """Tunables of the Hamband runtime (times in microseconds)."""

    ring_slots: int = 8192
    slot_size: int = 512
    summary_payload: int = 4096
    backup_size: int = 4608
    #: Buffer-traversal cadence when the last sweep found nothing.
    poll_interval_us: float = 1.0
    #: Cadence right after progress (records often arrive in trains).
    poll_hot_us: float = 0.2
    apply_cpu_us: float = 0.15
    local_cpu_us: float = 0.08
    query_cpu_us: float = 0.20
    hb_interval_us: float = 20.0
    fd_poll_us: float = 60.0
    suspect_after: int = 3
    #: Conflicting calls waiting for permissibility retry at this pace.
    conf_retry_us: float = 2.0
    conf_retry_limit: int = 800
    #: Leader-side decision batching: up to this many queued conflicting
    #: calls are ordered, applied, and replicated in ONE remote write
    #: per follower.  1 disables batching (the paper's configuration).
    conf_batch: int = 1
    vote_timeout_us: float = 800.0
    #: Treat reducible methods as irreducible conflict-free (the paper's
    #: Figure 9 GSet-with-buffers configuration).
    force_buffered: bool = False
    #: Flow control: readers acknowledge ring progress every this many
    #: applied records (one tiny one-sided write back to the writer);
    #: writers block (backpressure) instead of lapping a slow reader.
    #: 0 disables acks — then writers rely on ring sizing alone.
    ack_every: int = 64
    backpressure_wait_us: float = 1.0
    backpressure_limit: int = 20000
    #: Ablation: ship the issuer's *entire* applied map as the
    #: dependency record instead of the projection over Dep(u) —
    #: receivers then wait for everything the issuer had seen (a causal
    #: barrier), not just the calls the invariant actually needs.
    full_dep_barrier: bool = False


def f_region(writer: str) -> str:
    return f"hamband:F:{writer}"

def l_region(gid: str) -> str:
    return f"hamband:L:{gid}"

def s_region(group: str, owner: str) -> str:
    return f"hamband:S:{group}:{owner}"

def f_ack_region(reader: str) -> str:
    """At a writer: the reader's progress ack for the writer's F records."""
    return f"hamband:ack:F:{reader}"

def l_ack_region(gid: str, reader: str) -> str:
    """At a (potential) leader: the reader's progress ack for L:{gid}."""
    return f"hamband:ack:L:{gid}:{reader}"


class HambandNode:
    """One replica of a Hamband-replicated object."""

    def __init__(self, rnode: RdmaNode, coordination: Coordination,
                 processes: list[str], initial_leaders: dict[str, str],
                 config: RuntimeConfig, event_log: list):
        self.rnode = rnode
        self.env: Environment = rnode.env
        self.name = rnode.name
        self.coordination = coordination
        self.spec = coordination.spec
        self.processes = sorted(processes)
        self.peers = [p for p in self.processes if p != self.name]
        self.config = config
        self.event_log = event_log

        self.sigma = self.spec.initial_state()
        #: A — applied counts for buffered (F/L) calls, incl. our own.
        self.applied: dict[tuple[str, str], int] = {}
        #: Call keys applied via buffers or recovery, for dedup.
        self.seen: set[tuple[str, int]] = set()
        self._rid = itertools.count(1)
        #: Recovered-from-backup calls awaiting their dependencies.
        self.pending_recovered: list[tuple[Call, DependencyMap]] = []
        #: Outstanding forwarded-request waiters, by token.
        self._fwd_waiters: dict[str, Event] = {}
        #: Failure injection: a failed node refuses new requests (the
        #: paper's model — requests are redirected to live nodes) while
        #: its memory stays remotely accessible.
        self.failed = False
        #: Crashed background workers (supervised): any entry here is
        #: a bug surfaced loudly instead of a silent wedge.
        self.failures: list[str] = []
        #: Per-node operation counters for introspection/benchmarks.
        self.counters = {
            "queries": 0,
            "reduced": 0,
            "freed": 0,
            "conf_decided": 0,
            "buffer_applied": 0,
            "recovered_applied": 0,
            "forwarded": 0,
        }

        self._register_regions()
        self._init_rings()
        self._init_summaries()
        self.broadcast = ReliableBroadcast(rnode, config.backup_size)
        self.heartbeat = Heartbeat(rnode, config.hb_interval_us)
        self.detector = FailureDetector(
            rnode,
            self.processes,
            poll_interval_us=config.fd_poll_us,
            suspect_after=config.suspect_after,
            on_suspect=self._on_suspect,
        )
        self._init_consensus(initial_leaders)
        self._spawn_supervised(self._poll_loop(), f"poll:{self.name}")
        for peer in self.peers:
            self._spawn_supervised(
                self._control_listener(peer), f"ctl:{self.name}<-{peer}"
            )

    def _spawn_supervised(self, generator, name: str):
        """Run a background worker; record (never swallow) its death.

        A dead poller or consensus worker turns into a silent cluster
        wedge otherwise — the failure list makes the workload driver
        and the tests fail loudly instead.
        """

        def wrapper():
            try:
                yield from generator
            except Exception as exc:  # noqa: BLE001 - supervision boundary
                self.failures.append(f"{name}: {exc!r}")
                raise

        return self.env.process(wrapper(), name=name)

    # -- setup -------------------------------------------------------------

    def _register_regions(self) -> None:
        cfg = self.config
        for peer in self.peers:
            self.rnode.register(
                f_region(peer), cfg.ring_slots * cfg.slot_size
            )
        for group in self.coordination.sync_groups():
            self.rnode.register(
                l_region(group.gid), cfg.ring_slots * cfg.slot_size
            )
        for reader in self.peers:
            self.rnode.register(f_ack_region(reader), 8)
            for group in self.coordination.sync_groups():
                self.rnode.register(l_ack_region(group.gid, reader), 8)
        summary_size = slot_size_for(cfg.summary_payload)
        for summarizer in self.spec.summarizers:
            for owner in self.processes:
                self.rnode.register(
                    s_region(summarizer.group, owner), summary_size
                )

    def _init_rings(self) -> None:
        cfg = self.config
        self.f_readers = {
            peer: RingReader(
                self.rnode.regions[f_region(peer)],
                cfg.ring_slots,
                cfg.slot_size,
            )
            for peer in self.peers
        }
        #: Our writer state toward each peer's F ring for our calls.
        self.f_writers = {
            peer: RingWriter(cfg.ring_slots, cfg.slot_size)
            for peer in self.peers
        }
        if cfg.ack_every:
            for writer in self.f_writers.values():
                writer.reader_acked = 0
        #: Last ring-head count acknowledged back to each writer.
        self._acked: dict[str, int] = {}
        self.l_readers = {
            group.gid: RingReader(
                self.rnode.regions[l_region(group.gid)],
                cfg.ring_slots,
                cfg.slot_size,
            )
            for group in self.coordination.sync_groups()
        }
        # Partially applied leader batches, per group (see _drain_l).
        self._l_partial = {
            group.gid: deque()
            for group in self.coordination.sync_groups()
        }
        #: Empty-head streak counters for hole detection (see
        #: _maybe_detect_hole).
        self._l_hole_misses: dict[str, int] = {}

    def _init_summaries(self) -> None:
        cfg = self.config
        summary_size = slot_size_for(cfg.summary_payload)
        self.summary_readers: dict[tuple[str, str], SummarySlot] = {}
        #: Our in-memory mirror: group -> (seq, summary call, counts).
        self.summary_mirror: dict[str, tuple[int, Call, dict[str, int]]] = {}
        for summarizer in self.spec.summarizers:
            for owner in self.processes:
                region = self.rnode.regions[s_region(summarizer.group, owner)]
                self.summary_readers[(summarizer.group, owner)] = SummarySlot(
                    region, 0, summary_size
                )
            self.summary_mirror[summarizer.group] = (
                0,
                summarizer.identity(self.name),
                {},
            )

    def _init_consensus(self, initial_leaders: dict[str, str]) -> None:
        mu_config = MuConfig(
            ring_slots=self.config.ring_slots,
            slot_size=self.config.slot_size,
            vote_timeout_us=self.config.vote_timeout_us,
        )
        self.mu_groups: dict[str, MuGroup] = {}
        self.conf_queues: dict[str, Store] = {}
        for group in self.coordination.sync_groups():
            gid = group.gid
            self.mu_groups[gid] = MuGroup(
                self.rnode,
                gid,
                self.processes,
                initial_leaders[gid],
                l_region(gid),
                mu_config,
                control_send=self._control_send,
                local_head=lambda gid=gid: self.l_readers[gid].head,
                ack_of=(
                    (
                        lambda peer, gid=gid: self.rnode.regions[
                            l_ack_region(gid, peer)
                        ].read_u64(0)
                    )
                    if self.config.ack_every
                    else None
                ),
                on_demoted=lambda gid=gid: self._on_demoted(gid),
            )
            self.conf_queues[gid] = Store(self.env)
            self._spawn_supervised(
                self._conf_worker(gid), f"conf:{self.name}:{gid}"
            )

    # -- public API ------------------------------------------------------------

    def current_leader(self, method: str) -> str:
        group = self.coordination.sync_group(method)
        if group is None:
            raise ValueError(f"{method} is conflict-free")
        return self.mu_groups[group.gid].leader

    def submit(self, method: str, arg: Any = None) -> Event:
        """Issue a request; the returned event carries the response.

        The event fails with :class:`NotLeaderError` for a conflicting
        call at a non-leader (the paper redirects these client-side)
        and with :class:`ImpermissibleError` for integrity violations.
        """
        if self.failed:
            raise SubmitError(f"node {self.name} has failed")
        if method in self.spec.queries:
            return self.env.process(
                self._do_query(method, arg), name=f"q:{self.name}:{method}"
            )
        category = self._category(method)
        if category is Category.REDUCIBLE:
            gen = self._do_reduce(method, arg)
        elif category is Category.IRREDUCIBLE_CONFLICT_FREE:
            gen = self._do_free(method, arg)
        else:
            gen = self._do_conf(method, arg)
        return self.env.process(gen, name=f"u:{self.name}:{method}")

    def effective_state(self) -> Any:
        """``Apply(S)(σ)``: summaries folded over the stored state."""
        sigma = self.sigma
        for (_group, _owner), slot in self.summary_readers.items():
            value = slot.read()
            if value is not None:
                sigma = self.spec.apply_call(value[0], sigma)
        return sigma

    def applied_count(self, process: str, method: str) -> int:
        """A(p, u), consulting summary slots for reducible methods."""
        if self._category(method) is Category.REDUCIBLE:
            summarizer = self.spec.summarizer_of(method)
            slot = self.summary_readers[(summarizer.group, process)]
            return slot.applied_count(method)
        return self.applied.get((process, method), 0)

    def applied_total(self) -> int:
        """Total update calls reflected at this node (A summed)."""
        total = sum(self.applied.values())
        for slot in self.summary_readers.values():
            value = slot.read()
            if value is not None:
                total += sum(value[1].values())
        return total

    # -- category dispatch -------------------------------------------------

    def _category(self, method: str) -> Category:
        category = self.coordination.category(method)
        if (
            self.config.force_buffered
            and category is Category.REDUCIBLE
        ):
            return Category.IRREDUCIBLE_CONFLICT_FREE
        return category

    def _make_call(self, method: str, arg: Any) -> Call:
        return Call(method, arg, self.name, next(self._rid))

    def _log(self, rule: str, call: Call) -> None:
        self.event_log.append(
            ConcreteEvent(rule, self.name, call, at=self.env.now)
        )

    def _do_query(self, method: str, arg: Any):
        yield from self.rnode.cpu.use(self.config.query_cpu_us)
        self.counters["queries"] += 1
        return self.spec.run_query(method, arg, self.effective_state())

    # Case 2: reducible — summarize locally, one remote write per peer.
    def _do_reduce(self, method: str, arg: Any):
        yield from self.rnode.cpu.use(self.config.local_cpu_us)
        call = self._make_call(method, arg)
        state = self.effective_state()
        if not self.spec.invariant(self.spec.apply_call(call, state)):
            raise ImpermissibleError(f"{call} violates the invariant")
        summarizer = self.spec.summarizer_of(method)
        seq, current, counts = self.summary_mirror[summarizer.group]
        combined = summarizer.combine(current, call)
        counts = dict(counts)
        counts[method] = counts.get(method, 0) + 1
        seq += 1
        self.summary_mirror[summarizer.group] = (seq, combined, counts)
        slot_bytes = render_summary(
            seq, combined, counts, slot_size_for(self.config.summary_payload)
        )
        region_name = s_region(summarizer.group, self.name)
        # Local install first (the REDUCE transition's own-process part).
        self.rnode.regions[region_name].write(0, slot_bytes)
        self._log("REDUCE", call)
        self.counters["reduced"] += 1
        own_region = self.rnode.regions[region_name]
        # A retried summary write re-renders the region's CURRENT bytes
        # (used prefix only), so it never replaces a newer summary with
        # a stale one and never ships the whole reserved region.
        refresh = lambda: current_record_bytes(own_region)
        writes = [
            (
                self.rnode.qp_to(peer),
                self.rnode.region_of(peer, region_name),
                0,
                refresh,
            )
            for peer in self.peers
        ]
        message = encode_value(("S", summarizer.group, slot_bytes))
        yield from self.broadcast.broadcast(
            message, writes, is_suspected=self.detector.is_suspected
        )
        return call

    # Case 3: irreducible conflict-free — local apply + F-ring fan-out.
    def _do_free(self, method: str, arg: Any):
        yield from self.rnode.cpu.use(self.config.local_cpu_us)
        call = self._make_call(method, arg)
        post_sigma = self.spec.apply_call(call, self.sigma)
        if not self._invariant_with_summaries(post_sigma):
            raise ImpermissibleError(f"{call} violates the invariant")
        dep = self._dep_projection(method)
        self.sigma = post_sigma
        self._bump_applied(self.name, method)
        self.seen.add(call.key())
        self._log("FREE", call)
        self.counters["freed"] += 1
        packet = encode_call_packet(call, dep)
        writes = []
        for peer in self.peers:
            offset, slot = yield from self._render_with_backpressure(
                self.f_writers[peer], f_ack_region(peer), packet
            )
            writes.append(
                (
                    self.rnode.qp_to(peer),
                    self.rnode.region_of(peer, f_region(self.name)),
                    offset,
                    slot,
                )
            )
        message = encode_value(("F", packet))
        yield from self.broadcast.broadcast(
            message, writes, is_suspected=self.detector.is_suspected
        )
        return call

    def _render_with_backpressure(self, writer: RingWriter,
                                  ack_region_name: str, payload: bytes):
        """Render a ring record, waiting for reader progress when full.

        The reader's acks land in our local ack region; refreshing it is
        a local memory read.  A reader that stops acking entirely (dead
        or suspected) stops throttling us: we fall back to ring-sizing
        mode rather than blocking behind a corpse.
        """
        cfg = self.config
        waited = 0
        while True:
            if cfg.ack_every:
                acked = self.rnode.regions[ack_region_name].read_u64(0)
                writer.ack_up_to(acked)
            try:
                return writer.render(payload)
            except RingError:
                waited += 1
                if (
                    waited > cfg.backpressure_limit
                    or self._reader_of(ack_region_name) in
                    self.detector.suspected
                ):
                    writer.reader_acked = None  # stop throttling
                    return writer.render(payload)
                yield self.env.timeout(cfg.backpressure_wait_us)

    @staticmethod
    def _reader_of(ack_region_name: str) -> str:
        return ack_region_name.rsplit(":", 1)[-1]

    # Case 4: conflicting — ordered by the group leader through Mu.
    def _do_conf(self, method: str, arg: Any):
        group = self.coordination.sync_group(method)
        mu = self.mu_groups[group.gid]
        if mu.leader != self.name:
            raise NotLeaderError(method, mu.leader)
        done = self.env.event()
        self.conf_queues[group.gid].put((method, arg, done))
        result = yield done
        if isinstance(result, Exception):
            raise result
        return result

    def _conf_worker(self, gid: str):
        """Serializes conflicting calls of one group at the leader."""
        queue = self.conf_queues[gid]
        mu = self.mu_groups[gid]
        cfg = self.config
        while True:
            item = yield queue.get()
            method, arg, done, call, retries = (
                item if len(item) == 5 else (*item, None, 0)
            )
            if self.failed:
                done.succeed(SubmitError(f"node {self.name} has failed"))
                continue
            if mu.leader != self.name:
                done.succeed(NotLeaderError(method, mu.leader))
                continue
            if call is None:
                yield from self.rnode.cpu.use(cfg.local_cpu_us)
                call = self._make_call(method, arg)
            post_sigma = self.spec.apply_call(call, self.sigma)
            if not self._invariant_with_summaries(post_sigma):
                # Not (yet) permissible: its dependencies may still be
                # in flight toward this leader (Fig. 11b/13b).  Other
                # calls of the group must not head-block behind it —
                # the leader is free to order any enabled call first —
                # so requeue it and move on.
                if retries >= cfg.conf_retry_limit:
                    done.succeed(
                        ImpermissibleError(f"{call} violates the invariant")
                    )
                else:
                    yield self.env.timeout(cfg.conf_retry_us)
                    queue.put((method, arg, done, call, retries + 1))
                continue
            # Accepted speculatively: no local state changes until the
            # decision commits (a deposed leader's failed replication
            # must leave no trace; see docs/protocols.md).
            overlay = {(self.name, method): 1}
            dep = self._dep_projection(method)
            try:
                packet = encode_call_batch([(call, dep)])
            except Exception as exc:
                done.succeed(SubmitError(f"cannot encode {call}: {exc}"))
                continue
            if len(packet) > cfg.slot_size - 5:
                done.succeed(
                    SubmitError(
                        f"record of {len(packet)} bytes exceeds ring slots"
                    )
                )
                continue
            entries = [(call, dep)]
            dones = [(done, call)]
            spec_sigma = post_sigma
            # Piggyback more queued calls onto the same decision (one
            # remote write carries the whole batch when conf_batch > 1).
            while len(entries) < cfg.conf_batch:
                available, extra = queue.try_get()
                if not available:
                    break
                accepted = yield from self._try_accept_conf(
                    queue, extra, entries, spec_sigma, overlay
                )
                if accepted in ("requeued", "full"):
                    # Do not spin pulling the same call back out of the
                    # queue within one batch round.
                    break
                if accepted is not None:
                    entries.append(accepted[0])
                    dones.append(accepted[1])
                    packet = accepted[2]
                    spec_sigma = accepted[3]
            # Commit point: log the issue events at post time so every
            # follower application orders after them in the event log.
            logged = []
            for batched_call, _dep in entries:
                event = ConcreteEvent(
                    "CONF", self.name, batched_call, at=self.env.now
                )
                self.event_log.append(event)
                logged.append(event)
            ok = yield from mu.replicate(packet)
            if ok:
                # Conflict-free calls the poller applied meanwhile all
                # S-commute with this batch, so re-applying the batch on
                # the evolved state is exactly the decided execution.
                for batched_call, _dep in entries:
                    self.sigma = self.spec.apply_call(
                        batched_call, self.sigma
                    )
                    self._bump_applied(self.name, batched_call.method)
                    self.seen.add(batched_call.key())
            else:
                for event in logged:
                    self.event_log.remove(event)
                if not mu.is_leader and mu.leader == self.name:
                    # Deposed without having voted (e.g. cut off by a
                    # partition): learn who leads now so redirects point
                    # somewhere useful instead of back at us.
                    yield from self._discover_leader(gid)
            for waiting, batched_call in dones:
                if ok:
                    self.counters["conf_decided"] += 1
                    waiting.succeed(batched_call)
                else:
                    waiting.succeed(
                        NotLeaderError(batched_call.method, mu.leader)
                        if not mu.is_leader
                        else SubmitError("replication failed")
                    )

    def _on_demoted(self, gid: str) -> None:
        """This node just stopped leading ``gid``: rejoin as follower.

        As leader it applied its decided records directly (its own L
        ring was never written), so the ring reader fast-forwards to
        ``decided`` and a self-repair scan copies any records it missed
        from healthy peers' log copies.
        """
        mu = self.mu_groups[gid]
        reader = self.l_readers[gid]
        reader.head = max(reader.head, mu.decided)
        self._spawn_supervised(
            self._rejoin_repair(gid), f"rejoin:{self.name}:{gid}"
        )

    def _rejoin_repair(self, gid: str):
        mu = self.mu_groups[gid]
        yield from mu.self_repair(set(self.detector.suspected))

    def _discover_leader(self, gid: str):
        """Ask reachable peers who currently leads ``gid``."""
        for peer in self.peers:
            if self.detector.is_suspected(peer):
                continue
            yield from self._control_send(peer, ("who_leads", gid))
        # Replies arrive through the control listener, which updates
        # the Mu group's view; give them one control round trip.
        yield self.env.timeout(3.0)

    def _try_accept_conf(self, queue: Store, item, entries, spec_sigma,
                         overlay):
        """Accept one queued conflicting call into the current batch.

        Speculative: permissibility is checked on ``spec_sigma`` (the
        batch's evolving state) and dependency counts on ``overlay``,
        with no node-state mutation — the worker commits the whole batch
        only after replication succeeds.

        Returns ``((call, dep), (done, call), packet, post_sigma)`` on
        success, ``"requeued"`` when the call must wait (put back),
        ``"full"`` when it does not fit this batch's record, or None
        when it was rejected with an error.
        """
        cfg = self.config
        method, arg, done, call, retries = (
            item if len(item) == 5 else (*item, None, 0)
        )
        if call is None:
            yield from self.rnode.cpu.use(cfg.local_cpu_us)
            call = self._make_call(method, arg)
        post_sigma = self.spec.apply_call(call, spec_sigma)
        if not self._invariant_with_summaries(post_sigma):
            if retries >= cfg.conf_retry_limit:
                done.succeed(
                    ImpermissibleError(f"{call} violates the invariant")
                )
                return None
            queue.put((method, arg, done, call, retries + 1))
            return "requeued"
        dep = self._dep_projection(method, overlay)
        try:
            packet = encode_call_batch(entries + [(call, dep)])
        except Exception as exc:
            done.succeed(SubmitError(f"cannot encode {call}: {exc}"))
            return None
        if len(packet) > cfg.slot_size - 5:
            # Record full: leave the call for the next decision.
            queue.put((method, arg, done, call, retries))
            return "full"
        overlay[(self.name, method)] = overlay.get((self.name, method), 0) + 1
        return (call, dep), (done, call), packet, post_sigma

    # -- shared helpers ----------------------------------------------------

    def _invariant_with_summaries(self, sigma: Any) -> bool:
        state = sigma
        for slot in self.summary_readers.values():
            value = slot.read()
            if value is not None:
                state = self.spec.apply_call(value[0], state)
        return bool(self.spec.invariant(state))

    def _dep_projection(self, method: str,
                        overlay: Optional[dict] = None) -> DependencyMap:
        """``A | Dep(u)``, plus the batch's speculative counts."""
        if self.config.full_dep_barrier:
            dep_methods = list(self.spec.updates)
        else:
            dep_methods = self.coordination.dep(method)
        dep: DependencyMap = {}
        for dep_method in dep_methods:
            for process in self.processes:
                count = self.applied_count(process, dep_method)
                if overlay:
                    count += overlay.get((process, dep_method), 0)
                if count:
                    dep[(process, dep_method)] = count
        return dep

    def _dep_ok(self, dep: DependencyMap) -> bool:
        return all(
            self.applied_count(process, method) >= need
            for (process, method), need in dep.items()
        )

    def _bump_applied(self, process: str, method: str) -> None:
        key = (process, method)
        self.applied[key] = self.applied.get(key, 0) + 1

    # -- buffer traversal -----------------------------------------------------

    def _poll_loop(self):
        cfg = self.config
        while True:
            progressed = False
            if self.rnode.alive:
                progressed = yield from self._traverse_once()
            yield self.env.timeout(
                cfg.poll_hot_us if progressed else cfg.poll_interval_us
            )

    def _traverse_once(self):
        progressed = False
        for origin, reader in self.f_readers.items():
            progressed |= yield from self._drain_ring(reader, "FREE_APP")
        for gid, reader in self.l_readers.items():
            progressed |= yield from self._drain_l(gid, reader)
        if self.pending_recovered:
            progressed |= yield from self._drain_recovered()
        if self.config.ack_every:
            yield from self._flush_acks()
        return progressed

    def _flush_acks(self):
        """Push ring-progress acks back to the writers (flow control)."""
        cfg = self.config
        for origin, reader in self.f_readers.items():
            key = f"F:{origin}"
            if reader.head - self._acked.get(key, 0) >= cfg.ack_every:
                yield from self._post_ack(
                    origin, f_ack_region(self.name), reader.head
                )
                self._acked[key] = reader.head
        for gid, reader in self.l_readers.items():
            key = f"L:{gid}"
            if reader.head - self._acked.get(key, 0) >= cfg.ack_every:
                leader = self.mu_groups[gid].leader
                if leader != self.name:
                    yield from self._post_ack(
                        leader, l_ack_region(gid, self.name), reader.head
                    )
                self._acked[key] = reader.head

    def _post_ack(self, target: str, region_name: str, head: int):
        region = self.rnode.region_of(target, region_name)
        qp = self.rnode.qp_to(target)
        yield from self.rnode.cpu.use(qp.config.post_cpu_us)
        qp.post_write(region, 0, head.to_bytes(8, "little"))

    def _drain_ring(self, reader: RingReader, rule: str):
        progressed = False
        while True:
            payload = reader.peek()
            if payload is None:
                break
            call, dep = decode_call_packet(payload)
            if call.key() in self.seen:
                reader.advance()  # duplicate via recovery path
                continue
            if not self._dep_ok(dep):
                break  # the head blocks the buffer, as in the semantics
            yield from self.rnode.cpu.use(self.config.apply_cpu_us)
            self._apply_buffered(call, rule)
            reader.advance()
            progressed = True
        return progressed

    def _drain_l(self, gid: str, reader: RingReader):
        """Apply conflicting records, which may be leader-side batches.

        A consumed ring record expands into the partial queue; entries
        are applied strictly in order, blocking at the first whose
        dependencies are unsatisfied — exactly the per-call semantics,
        with the batch only changing the wire framing.
        """
        progressed = False
        partial = self._l_partial[gid]
        while True:
            if not partial:
                payload = reader.peek()
                if payload is None:
                    self._maybe_detect_hole(gid, reader)
                    break
                partial.extend(decode_call_batch(payload))
                reader.advance()
                continue
            call, dep = partial[0]
            if call.key() in self.seen:
                partial.popleft()
                continue
            if not self._dep_ok(dep):
                break
            yield from self.rnode.cpu.use(self.config.apply_cpu_us)
            self._apply_buffered(call, "CONF_APP")
            partial.popleft()
            progressed = True
        return progressed

    def _maybe_detect_hole(self, gid: str, reader: RingReader) -> None:
        """A valid record AHEAD of an empty head means our log copy has
        a hole (e.g. writes lost while we were partitioned): repair it
        from peers.  Probed exponentially and rate-limited — the common
        empty-head case costs a few slot reads every 256 misses."""
        misses = self._l_hole_misses.get(gid, 0) + 1
        self._l_hole_misses[gid] = misses
        if misses % 256:
            return
        from .ringbuffer import parse_record

        slots = self.config.ring_slots
        slot_size = self.config.slot_size
        offset_index = 1
        while offset_index <= 1024:
            index = reader.head + offset_index
            offset = (index % slots) * slot_size
            slot = reader.region.read(offset, slot_size)
            if parse_record(slot, index, slots) is not None:
                self._spawn_supervised(
                    self._rejoin_repair(gid), f"hole-repair:{self.name}"
                )
                return
            offset_index *= 2

    def _drain_recovered(self):
        progressed = False
        remaining = []
        for call, dep in self.pending_recovered:
            if call.key() in self.seen:
                continue
            if self._dep_ok(dep):
                yield from self.rnode.cpu.use(self.config.apply_cpu_us)
                self._apply_buffered(call, "FREE_APP")
                self.counters["recovered_applied"] += 1
                progressed = True
            else:
                remaining.append((call, dep))
        self.pending_recovered = remaining
        return progressed

    def _apply_buffered(self, call: Call, rule: str) -> None:
        self.counters["buffer_applied"] += 1
        self.sigma = self.spec.apply_call(call, self.sigma)
        self._bump_applied(call.origin, call.method)
        self.seen.add(call.key())
        self._log(rule, call)

    # -- control plane and failure handling -----------------------------------

    def _control_send(self, peer: str, message: Any):
        qp = self.rnode.qp_to(peer)
        yield from qp.send(encode_value(message))

    def _control_listener(self, peer: str):
        qp = self.rnode.qp_to(peer)
        while True:
            incoming = yield from qp.recv()
            if not self.rnode.alive:
                continue
            message = decode_value(incoming.payload)
            kind = message[0]
            if kind in ("vote_req", "vote_ack", "who_leads", "leader_is"):
                mu = self.mu_groups.get(message[1])
                if mu is None:
                    continue
                reply = mu.handle_control(incoming.src, message)
                if reply is not None:
                    yield from self._control_send(incoming.src, reply)
            elif kind == "fwd_req":
                self.env.process(
                    self._serve_forwarded(incoming.src, message),
                    name=f"fwd:{self.name}",
                )
            elif kind == "fwd_resp":
                _kind, token, outcome, data = message
                waiter = self._fwd_waiters.pop(token, None)
                if waiter is not None and not waiter.triggered:
                    waiter.succeed((outcome, data))

    # -- request forwarding (paper: conflicting calls are "automatically
    # redirected to the corresponding leader node(s)") -----------------------

    def submit_any(self, method: str, arg: Any = None) -> Event:
        """Like :meth:`submit`, but a conflicting call at a non-leader
        is forwarded to the leader over the control plane instead of
        erroring with a redirect."""
        if method in self.spec.queries:
            return self.submit(method, arg)
        category = self._category(method)
        if category is not Category.CONFLICTING:
            return self.submit(method, arg)
        group = self.coordination.sync_group(method)
        if self.mu_groups[group.gid].leader == self.name:
            return self.submit(method, arg)
        return self.env.process(
            self._forward_to_leader(group.gid, method, arg),
            name=f"fwd-client:{self.name}:{method}",
        )

    def _forward_to_leader(self, gid: str, method: str, arg: Any,
                           max_hops: int = 5):
        for _hop in range(max_hops):
            leader = self.mu_groups[gid].leader
            if leader == self.name:
                result = yield self.submit(method, arg)
                return result
            token = f"{self.name}:{next(self._rid)}"
            waiter = self.env.event()
            self._fwd_waiters[token] = waiter
            yield from self._control_send(
                leader, ("fwd_req", token, method, arg)
            )
            outcome, data = yield waiter
            if outcome == "ok":
                m, a, origin, rid = data
                return Call(m, a, origin, rid)
            if outcome == "impermissible":
                raise ImpermissibleError(data)
            if outcome == "redirect":
                # The peer no longer leads; adopt its view and retry.
                self.mu_groups[gid].leader = data
                continue
            raise SubmitError(str(data))
        raise SubmitError(f"no stable leader found for {method}")

    def _serve_forwarded(self, src: str, message: Any):
        _kind, token, method, arg = message
        self.counters["forwarded"] += 1
        try:
            result = yield self.submit(method, arg)
            reply = ("ok", (result.method, result.arg, result.origin,
                            result.rid))
        except NotLeaderError as redirect:
            reply = ("redirect", redirect.leader)
        except ImpermissibleError as exc:
            reply = ("impermissible", str(exc))
        except SubmitError as exc:
            reply = ("error", str(exc))
        yield from self._control_send(
            src, ("fwd_resp", token, reply[0], reply[1])
        )

    def _on_suspect(self, peer: str) -> None:
        self.env.process(
            self._recover_broadcasts(peer), name=f"recover:{self.name}"
        )
        for gid, mu in self.mu_groups.items():
            if mu.leader == peer:
                candidates = [
                    p
                    for p in self.processes
                    if p != peer and not self.detector.is_suspected(p)
                ]
                if candidates and candidates[0] == self.name:
                    self.env.process(
                        self._campaign(gid), name=f"campaign:{self.name}"
                    )

    def _campaign(self, gid: str):
        mu = self.mu_groups[gid]
        won = yield from mu.campaign(set(self.detector.suspected))
        if won:
            # Old leader's queued clients at this node now proceed here.
            pass

    def _recover_broadcasts(self, peer: str):
        """Pull a suspected source's backup slot (reliable broadcast).

        The slot holds a tagged message: an F-ring call packet or a
        summary slot image.  Either is delivered if not already seen —
        agreement for the calls the source broadcast half-way.
        """
        message = yield from self.broadcast.fetch_backup_of(peer)
        if message is None:
            return
        tagged = decode_value(message)
        if tagged[0] == "F":
            call, dep = decode_call_packet(tagged[1])
            if call.key() not in self.seen:
                self.pending_recovered.append((call, dep))
        elif tagged[0] == "S":
            _tag, group, slot_bytes = tagged
            (recovered_seq,) = struct.unpack_from("<Q", slot_bytes, 0)
            region = self.rnode.regions[s_region(group, peer)]
            (local_seq,) = struct.unpack_from("<Q", region.read(0, 8), 0)
            if recovered_seq > local_seq:
                region.write(0, slot_bytes)
