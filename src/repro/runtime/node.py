"""The Hamband node runtime façade (paper §4).

:class:`HambandNode` composes the four runtime layers into one replica
of a Hamband-replicated object and keeps the public request API
(:meth:`submit`, :meth:`submit_any`, :meth:`effective_state`,
:meth:`applied_count`, :meth:`stats`) stable while each mechanism
lives in its own module:

- :class:`~repro.runtime.transport.RingTransport` — region
  registration, F/L ring readers/writers, ack flow control,
  backpressure (``runtime/transport.py``);
- :class:`~repro.runtime.applier.ApplyEngine` — σ, the applied-calls
  map A, summaries, dependency projection/checks, permissibility, the
  buffer-traversal loop, and the QUERY/REDUCE/FREE request paths
  (``runtime/applier.py``);
- :class:`~repro.runtime.conflict.ConflictCoordinator` — the Mu-backed
  leader path: decision batching, demotion/campaign/rejoin repair,
  hole detection, the L-ring drain (``runtime/conflict.py``);
- :class:`~repro.runtime.control.ControlPlane` — the two-sided
  listener, leader discovery dispatch, request forwarding, and
  broadcast recovery (``runtime/control.py``).

A single :class:`~repro.runtime.probe.RuntimeProbe` instrumentation
seam is threaded through all four layers (a no-op interface by
default; the node installs a :class:`~repro.runtime.probe.CountingProbe`
unless told otherwise) and surfaces through :meth:`stats`.

Request processing follows the paper's four cases: queries run locally;
reducible calls are summarized and remotely overwritten; irreducible
conflict-free calls are applied locally and reliably broadcast into F
rings; conflicting calls are ordered by the group leader through Mu
into L rings.  Every issue/apply also appends a
:class:`~repro.core.ConcreteEvent` to the cluster log, so integration
tests replay entire runs against the abstract semantics.

This module re-exports :class:`RuntimeConfig` and the request errors
from their leaf modules, keeping historical import paths stable.
"""

from __future__ import annotations

from typing import Any, Optional

from ..consensus.mu import mu_channel
from ..core import Category, Coordination
from ..rdma import RdmaNode
from ..sim import Environment, Event
from .applier import ApplyEngine
from .broadcast import ReliableBroadcast
from .config import (  # noqa: F401  (re-exported for import stability)
    RuntimeConfig,
    f_ack_region,
    f_region,
    l_ack_region,
    l_region,
    s_region,
)
from .conflict import ConflictCoordinator
from .control import ControlPlane
from .errors import (  # noqa: F401  (re-exported for import stability)
    ImpermissibleError,
    NotLeaderError,
    SubmitError,
)
from .heartbeat import FailureDetector, Heartbeat, PeerHealth
from .probe import CountingProbe, RuntimeProbe
from .scrubber import Scrubber
from .statexfer import StateTransfer
from .transport import RingTransport
from .wire import WireCodec

__all__ = [
    "HambandNode",
    "ImpermissibleError",
    "NotLeaderError",
    "RuntimeConfig",
    "SubmitError",
]


class HambandNode:
    """One replica of a Hamband-replicated object (a thin façade)."""

    def __init__(self, rnode: RdmaNode, coordination: Coordination,
                 processes: list[str], initial_leaders: dict[str, str],
                 config: RuntimeConfig, event_log: list,
                 probe: Optional[RuntimeProbe] = None,
                 wire_processes: Optional[list[str]] = None):
        self.rnode = rnode
        self.env: Environment = rnode.env
        self.name = rnode.name
        self.coordination = coordination
        self.spec = coordination.spec
        self.processes = sorted(processes)
        self.peers = [p for p in self.processes if p != self.name]
        self.config = config
        self.event_log = event_log
        #: Failure injection: a failed node refuses new requests (the
        #: paper's model — requests are redirected to live nodes) while
        #: its memory stays remotely accessible.
        self.failed = False
        #: Crashed background workers (supervised): any entry here is
        #: a bug surfaced loudly instead of a silent wedge.
        self.failures: list[str] = []
        #: Per-node operation counters for introspection/benchmarks.
        self.counters = {
            "queries": 0,
            "reduced": 0,
            "freed": 0,
            "conf_decided": 0,
            "buffer_applied": 0,
            "recovered_applied": 0,
            "forwarded": 0,
        }
        #: Current membership-epoch version (0 = the founding epoch;
        #: bumped by the membership layer on every join/leave).
        self.membership_epoch = 0
        #: The instrumentation seam shared by all four layers.
        self.probe = probe if probe is not None else CountingProbe()
        #: The cluster's wire codec: every node derives the SAME interned
        #: string table from the coordination spec and process list, so
        #: v2 packets decode everywhere without a handshake.  A node
        #: joining mid-run passes the FOUNDING list as ``wire_processes``
        #: so its table matches the incumbents' — its own name (absent
        #: from the table) rides the codec's inline escape.
        self.codec = WireCodec.for_cluster(
            config.wire_version,
            coordination,
            sorted(wire_processes) if wire_processes else self.processes,
        )

        # -- compose the four layers -----------------------------------
        #: Peer-health latency tracker (phi mode only): classifies
        #: limping-but-alive peers as degraded from one-sided op
        #: latency, driving hedged reads and slow-leader demotion.
        self.health: Optional[PeerHealth] = None
        #: Slow-leader demotion ballots: victim -> set of voters.
        self._slow_votes: dict[str, set] = {}
        if config.fd_mode == "phi":
            self.health = PeerHealth(
                alpha=config.health_alpha,
                degraded_factor=config.degraded_factor,
                min_samples=config.degraded_min_samples,
                clear_factor=config.degraded_clear_factor,
                on_degraded=self._on_peer_degraded,
                on_recovered=self._on_peer_recovered,
                probe=self.probe,
            )
        self.transport = RingTransport(
            rnode, coordination, self.processes, config, self.probe,
            codec=self.codec,
        )
        self.transport.health = self.health
        self.applier = ApplyEngine(
            rnode, coordination, config, event_log, self.probe,
            self.counters, codec=self.codec,
        )
        self.applier.init_summaries(self.processes)
        self.broadcast = ReliableBroadcast(rnode, config.backup_size)
        self.broadcast.health = self.health
        self.heartbeat = Heartbeat(rnode, config.hb_interval_us)
        self.detector = FailureDetector(
            rnode,
            self.processes,
            poll_interval_us=config.fd_poll_us,
            suspect_after=config.suspect_after,
            on_suspect=self._on_suspect,
            on_clear=self._on_clear,
            mode=config.fd_mode,
            phi_threshold=config.fd_phi_threshold,
            phi_window=config.fd_phi_window,
            phi_min_std_us=config.fd_phi_min_std_us,
            health=self.health,
            probe=self.probe,
        )
        self.control = ControlPlane(
            rnode, config, self.probe, self.counters, codec=self.codec
        )
        self.conflict = ConflictCoordinator(
            rnode, coordination, self.processes, initial_leaders, config,
            applier=self.applier,
            transport=self.transport,
            control_send=self.control.send,
            spawn=self._spawn_supervised,
            is_failed=lambda: self.failed,
            is_suspected=self.detector.is_suspected,
            suspected=lambda: self.detector.suspected,
            probe=self.probe,
            counters=self.counters,
            codec=self.codec,
        )
        self.applier.bind(
            self.transport, self.conflict, self.broadcast,
            self.detector.is_suspected,
        )
        self.control.bind(
            self.conflict, self.applier, self.broadcast, self.submit,
            on_resync=self._catch_up_from,
            on_slow_leader=self._slow_leader_vote,
        )
        self.scrubber = Scrubber(
            rnode, self.transport, config, self.probe,
            leader_of=self.conflict.leader_of,
            is_failed=lambda: self.failed,
            is_suspected=self.detector.is_suspected,
        )
        self._spawn_supervised(self.applier.poll_loop(), f"poll:{self.name}")
        if config.scrub_interval_us > 0:
            # Opt-in background scrub of at-rest ring replicas (the
            # consumption-time CRC paths run regardless).
            self._spawn_supervised(
                self.scrubber.loop(), f"scrub:{self.name}"
            )
        self.control.start(self.peers, self._spawn_supervised)

    def _spawn_supervised(self, generator, name: str):
        """Run a background worker; record (never swallow) its death.

        A dead poller or consensus worker turns into a silent cluster
        wedge otherwise — the failure list makes the workload driver
        and the tests fail loudly instead.
        """

        def wrapper():
            try:
                yield from generator
            except Exception as exc:  # noqa: BLE001 - supervision boundary
                self.failures.append(f"{name}: {exc!r}")
                raise

        return self.env.process(wrapper(), name=name)

    # -- public API ------------------------------------------------------

    def current_leader(self, method: str) -> str:
        return self.conflict.current_leader(method)

    def submit(self, method: str, arg: Any = None) -> Event:
        """Issue a request; the returned event carries the response.

        The event fails with :class:`NotLeaderError` for a conflicting
        call at a non-leader (the paper redirects these client-side)
        and with :class:`ImpermissibleError` for integrity violations.
        """
        if self.failed:
            raise SubmitError(f"node {self.name} has failed")
        if method in self.spec.queries:
            return self.env.process(
                self.applier.do_query(method, arg),
                name=f"q:{self.name}:{method}",
            )
        category = self.applier.category(method)
        if category is Category.REDUCIBLE:
            gen = self.applier.do_reduce(method, arg)
        elif category is Category.IRREDUCIBLE_CONFLICT_FREE:
            gen = self.applier.do_free(method, arg)
        else:
            gen = self.conflict.submit_conf(method, arg)
        return self.env.process(gen, name=f"u:{self.name}:{method}")

    def submit_any(self, method: str, arg: Any = None) -> Event:
        """Like :meth:`submit`, but a conflicting call at a non-leader
        is forwarded to the leader over the control plane instead of
        erroring with a redirect."""
        if method in self.spec.queries:
            return self.submit(method, arg)
        category = self.applier.category(method)
        if category is not Category.CONFLICTING:
            return self.submit(method, arg)
        group = self.coordination.sync_group(method)
        if self.conflict.leader_of(group.gid) == self.name:
            return self.submit(method, arg)
        return self.env.process(
            self.control.forward_to_leader(group.gid, method, arg),
            name=f"fwd-client:{self.name}:{method}",
        )

    def effective_state(self) -> Any:
        """``Apply(S)(σ)``: summaries folded over the stored state."""
        return self.applier.effective_state()

    def applied_count(self, process: str, method: str) -> int:
        """A(p, u), consulting summary slots for reducible methods."""
        return self.applier.applied_count(process, method)

    def applied_total(self) -> int:
        """Total update calls reflected at this node (A summed)."""
        return self.applier.applied_total()

    def stats(self) -> dict[str, Any]:
        """Live runtime statistics: legacy counters + probe snapshot.

        The ``probe`` section carries whatever the installed
        :class:`~repro.runtime.probe.RuntimeProbe` accumulated — with
        the default :class:`~repro.runtime.probe.CountingProbe`:
        per-rule applies, ring-occupancy high-water marks, backpressure
        stalls, conflict retries/batches, demotions, hole repairs,
        forwards, redirects, rejections, and broadcast recoveries.
        """
        return {
            "node": self.name,
            "counters": dict(self.counters),
            "probe": self.probe.snapshot(),
            "membership": {
                "epoch": self.membership_epoch,
                "members": list(self.processes),
            },
        }

    # -- membership -------------------------------------------------------

    def add_peer(self, name: str) -> None:
        """Rewire every layer for a newly joined peer.

        Order matters: the transport registers the peer's regions
        before the applier builds summary readers over them.  The
        joiner never leads an existing group, so its write permission
        on our Mu log channels is revoked up front — exactly the
        cluster-construction invariant for non-leaders.
        """
        if name == self.name or name in self.processes:
            return
        self.transport.add_peer(name)
        self.applier.add_process(name)
        self.detector.add_peer(name)
        self.conflict.add_member(name)
        self.processes = sorted([*self.processes, name])
        self.peers = [p for p in self.processes if p != self.name]
        self._spawn_supervised(
            self.control.listener(name), f"ctl:{self.name}<-{name}"
        )
        for gid in self.conflict.mu_groups:
            self.rnode.qp_to(name, mu_channel(gid)).revoke_peer_write()
        self.scrubber.rearm()

    def remove_peer(self, name: str) -> None:
        """Unwire a departed peer from every layer.

        The applier keeps its summary slots and applied counts (frozen
        state referenced by in-flight dependency arrays), the detector
        pins it suspected, and the transport keeps its ring reader as
        drainable history — only writers and polling go.
        """
        if name == self.name or name not in self.processes:
            return
        self.transport.remove_peer(name)
        self.detector.remove_peer(name)
        self.conflict.remove_member(name)
        self.processes.remove(name)
        self.peers = [p for p in self.processes if p != self.name]
        self.scrubber.rearm()

    # -- failure handling -------------------------------------------------

    def _on_suspect(self, peer: str) -> None:
        self.env.process(
            self.control.recover_broadcasts(peer),
            name=f"recover:{self.name}",
        )
        self.conflict.handle_suspect(peer)

    def _on_clear(self, peer: str) -> None:
        """A suspected peer proved alive again (partition healed or the
        node restarted): resynchronize in BOTH directions.

        Locally we pull the peer's rings/summaries (records we missed
        while cut off from it); then we tell the peer to pull ours — it
        has holes for every broadcast we skipped it on while we thought
        it dead."""

        def worker():
            yield from self._catch_up_from(peer)
            # The heal may have left ack flow control in its conservative
            # fallback; re-arm it from the next ack the peer publishes.
            self.transport.rearm_flow_control(peer)
            yield from self.control.send(peer, ("resync",))

        self.env.process(worker(), name=f"clear:{self.name}:{peer}")

    def _catch_up_from(self, peer: str):
        """Pull one peer's data through the unified state-transfer
        engine (leader re-discovery first — the healed-minority
        permission fix — then bulk F/L/summary install under the
        frontier barrier)."""
        yield from StateTransfer(self).run(sources=[peer], reason=peer)

    # -- gray-failure handling (phi mode) ----------------------------------

    def _leads_any(self, peer: str) -> bool:
        return any(self.conflict.leader_of(gid) == peer
                   for gid in self.conflict.mu_groups)

    def _on_peer_degraded(self, peer: str) -> None:
        """Our latency tracker classified ``peer`` as fail-slow.

        A degraded FOLLOWER is pinned suspected locally right away:
        suspicion of a non-leader only changes what WE do (skip posting
        to it, hedge reads around it) — crash-stop semantics already
        guarantee a skipped peer is owed nothing, so no coordination is
        needed.  A degraded LEADER is different: suspicion triggers a
        demotion campaign, and one node's noisy latency estimate must
        not depose a healthy leader — so we gather a quorum of
        independent detectors through the ``slow_leader`` ballot first.
        """
        if self.config.demote_slow_leader and self._leads_any(peer):
            self._spawn_supervised(
                self._slow_leader_ballot(peer),
                f"ballot:{self.name}:{peer}",
            )
        else:
            self.detector.mark_degraded(peer)

    def _slow_leader_ballot(self, victim: str):
        """Broadcast our slow-leader vote until quorum or recovery.

        Several rounds, spaced a few detector polls apart: votes ride
        the two-sided control plane, whose sends into the slow link may
        themselves be delayed or lost — repetition (the tally is a set,
        so it is idempotent) keeps one delayed packet from stalling the
        demotion."""
        for _round in range(5):
            if (not self.rnode.alive or self.failed
                    or self.health is None
                    or not self.health.is_degraded(victim)
                    or self.detector.is_degraded(victim)):
                return
            self._tally_slow_vote(self.name, victim)
            for peer in self.peers:
                if peer == victim or self.detector.is_suspected(peer):
                    continue
                yield from self.control.send(
                    peer, ("slow_leader", victim)
                )
            yield self.env.timeout(4.0 * self.config.fd_poll_us)

    def _slow_leader_vote(self, voter: str, victim: str) -> None:
        """Control-plane entry: ``voter`` claims ``victim`` is slow."""
        if victim == self.name:
            # Never demote ourselves on hearsay; if a quorum really
            # agrees, their campaign revokes our Mu write permission
            # and we discover the new leader like any deposed node.
            return
        self._tally_slow_vote(voter, victim)

    def _tally_slow_vote(self, voter: str, victim: str) -> None:
        votes = self._slow_votes.setdefault(victim, set())
        votes.add(voter)
        quorum = len(self.processes) // 2 + 1
        if len(votes) >= quorum and not self.detector.is_degraded(victim):
            # Quorum of independent detectors: pin the victim suspected
            # (fires on_suspect -> rank-staggered re-election + fan-out
            # skip) until its health recovers.
            self.detector.mark_degraded(victim)

    def _on_peer_recovered(self, peer: str) -> None:
        """The degraded peer's latency fell back to baseline: drop our
        ballot state and unpin — the next heartbeat advance clears the
        suspicion through the normal bidirectional-resync path."""
        self._slow_votes.pop(peer, None)
        self.detector.clear_degraded(peer)

    # -- restart / rejoin --------------------------------------------------

    def rejoin(self):
        """Catch a restarted node up to the cluster through the SAME
        state-transfer engine joins and heals use: re-learn leaders,
        bulk-install every F ring and L log copy, refresh summaries."""
        yield from StateTransfer(self).run(reason="restart")

    def start_rejoin(self):
        """Spawn the rejoin pass (supervised) after a restart."""
        return self._spawn_supervised(self.rejoin(), f"rejoin:{self.name}")

    # -- legacy layer-state views (pre-split attribute compatibility) ------

    @property
    def sigma(self) -> Any:
        return self.applier.sigma

    @sigma.setter
    def sigma(self, value: Any) -> None:
        self.applier.sigma = value

    @property
    def applied(self) -> dict[tuple[str, str], int]:
        return self.applier.applied

    @property
    def seen(self) -> set[tuple[str, int]]:
        return self.applier.seen

    @property
    def pending_recovered(self) -> list:
        return self.applier.pending_recovered

    @property
    def summary_readers(self) -> dict:
        return self.applier.summary_readers

    @property
    def summary_mirror(self) -> dict:
        return self.applier.summary_mirror

    @property
    def f_readers(self) -> dict:
        return self.transport.f_readers

    @property
    def f_writers(self) -> dict:
        return self.transport.f_writers

    @property
    def l_readers(self) -> dict:
        return self.transport.l_readers

    @property
    def mu_groups(self) -> dict:
        return self.conflict.mu_groups

    @property
    def conf_queues(self) -> dict:
        return self.conflict.conf_queues
