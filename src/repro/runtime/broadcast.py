"""RDMA reliable broadcast (paper §4 "RDMA Reliable Broadcast").

Best-effort broadcast on RDMA is a batch of remote writes — but the
source may crash mid-batch, delivering to some nodes and not others.
For agreement, the source keeps a *backup slot* readable by every peer:

1. write the message into the local backup slot,
2. remotely write it for every peer (one one-sided write each),
3. clear the backup slot.

If peers suspect the source (heartbeat silence), each survivor remote-
reads the backup slot; a non-empty slot is a possibly half-delivered
message, which the survivor delivers if it has not already (delivery is
deduplicated by the call's unique id upstream).
"""

from __future__ import annotations

import struct
from typing import Any, Generator, Optional

from ..rdma import (
    Access,
    MemoryRegion,
    QueuePair,
    RdmaNode,
    WcStatus,
    post_write_batch,
)
from ..sim import Environment, Event

__all__ = ["ReliableBroadcast", "BACKUP_REGION"]

BACKUP_REGION = "hamband:bcast_backup"
_HEADER = 4  # payload length


class ReliableBroadcast:
    """One node's broadcast endpoint: backup slot + write fan-out."""

    def __init__(self, node: RdmaNode, backup_size: int = 512,
                 local_write_us: float = 0.02):
        self.node = node
        self.env: Environment = node.env
        self.local_write_us = local_write_us
        self.backup = node.register(
            BACKUP_REGION,
            _HEADER + backup_size,
            access=Access.LOCAL | Access.REMOTE_READ,
        )
        #: Fault injection: when set, the source "process" dies at the
        #: next step of an in-flight broadcast — writes stop and the
        #: backup slot is never cleared, while the node's registered
        #: memory stays remotely readable (the RDMA failure model: a
        #: crashed process's NIC still serves one-sided reads).
        self.halted = False
        #: Peer-health latency tracker (phi mode only, wired by the
        #: node façade): every fan-out write completion feeds it a
        #: per-target latency sample, so fail-slow detection runs at
        #: data-plane cadence instead of the detector's poll interval.
        self.health = None

    # -- source side -----------------------------------------------------

    def broadcast(
        self,
        message: bytes,
        writes: list[tuple[QueuePair, MemoryRegion, int, Any]],
        is_suspected=None,
        max_retries: int = 50,
        retry_us: float = 20.0,
        piggyback: list[tuple[QueuePair, MemoryRegion, int, Any]] = (),
        skip_suspected: bool = False,
    ) -> Generator[Event, Any, list]:
        """``yield from`` helper: backup, fan out (with retries), clear.

        ``writes`` carries per-target (qp, region, offset, payload) —
        the same logical ``message`` rendered for each target's ring or
        slot.  ``payload`` may be a zero-argument callable, re-evaluated
        on each retry (summary slots re-render their *current* bytes so
        a retry can never clobber a newer summary with an older one).

        Each fan-out round is posted as ONE doorbell batch: a single
        ``post_cpu_us`` charge and a single completion wait cover the
        whole round, as a real NIC's chained work requests would.
        ``piggyback`` writes (flow-control acks coalesced onto this
        batch) ride the first round's doorbell fire-and-forget: their
        completions are awaited with the round but never retried, and
        they play no part in the broadcast's agreement bookkeeping.

        A failed write (unreachable peer, transient fault) is retried
        until it succeeds or the target is suspected — under the
        crash-stop model a suspected node is dead and owed nothing;
        short transients (e.g. a healed link) are ridden out.  If any
        write is *abandoned* toward an un-suspected peer (retries
        exhausted, or no suspicion oracle to consult), the backup slot
        is deliberately NOT cleared: the message may be half-delivered,
        and the backup is exactly what lets survivors finish the
        delivery (the paper's §4 agreement argument).

        ``skip_suspected`` (phi mode): don't post toward
        already-suspected targets at all.  A *fail-slow* peer completes
        writes eventually but late — waiting on its completion gates
        the whole batch behind the straggler.  Under crash-stop a
        suspected node is owed nothing, so skipping the post is the
        same contract as giving up on a failed write to it; the backup
        slot still covers recovery if the suspicion was wrong.
        """
        self._write_backup(message)
        yield from self.node.cpu.use(self.local_write_us)
        pending = list(writes)
        results: list = []
        if skip_suspected and is_suspected is not None:
            live = [w for w in pending
                    if not is_suspected(w[0].remote.name)]
            results.extend([None] * (len(pending) - len(live)))
            pending = live
        extra = list(piggyback)
        attempt = 0
        abandoned = False
        while pending:
            if self.halted:
                return results  # source died: backup stays set
            batch = [
                (qp, region, offset,
                 payload() if callable(payload) else payload)
                for qp, region, offset, payload in pending + extra
            ]
            completions = yield from post_write_batch(self.node.cpu, batch)
            if self.health is not None:
                # Per-completion callbacks, NOT the batch wait below:
                # all_of resolves at the straggler's time, which would
                # smear one slow target's latency over every peer.
                posted = self.env.now
                for (qp, _r, _o, _p), completion in zip(
                    batch, completions
                ):
                    completion._add_callback(
                        self._observe(qp.remote.name, posted)
                    )
            # ONE completion wait for the whole doorbell batch.
            done = yield self.env.all_of(completions)
            retry = []
            for (qp, region, offset, payload), completion in zip(
                pending, completions
            ):
                wc = done[completion]
                if wc.ok:
                    results.append(wc)
                elif is_suspected is not None and is_suspected(
                    qp.remote.name
                ):
                    results.append(wc)  # dead peer: give up, as crash-stop allows
                else:
                    retry.append((qp, region, offset, payload))
            extra = []  # piggybacked acks are fire-and-forget
            if not retry:
                break
            attempt += 1
            if attempt > max_retries or is_suspected is None:
                # Giving up on live (un-suspected) peers: the message is
                # possibly half-delivered and must stay recoverable.
                results.extend([None] * len(retry))
                abandoned = True
                break
            yield self.env.timeout(retry_us)
            pending = retry
        if self.halted:
            return results  # died before clearing: backup stays set
        if abandoned:
            return results  # keep the backup set: survivors can recover
        self._clear_backup()
        yield from self.node.cpu.use(self.local_write_us)
        return results

    def _observe(self, peer: str, posted: float):
        """A completion callback feeding the health tracker on success."""

        def callback(event):
            wc = event.value
            if wc is not None and getattr(wc, "ok", False):
                self.health.record(peer, self.env.now - posted)

        return callback

    def _write_backup(self, message: bytes) -> None:
        if _HEADER + len(message) > self.backup.size:
            raise ValueError(
                f"message of {len(message)} bytes exceeds backup slot"
            )
        slot = bytearray(self.backup.size)
        struct.pack_into("<I", slot, 0, len(message))
        slot[_HEADER : _HEADER + len(message)] = message
        self.backup.write(0, bytes(slot))

    def _clear_backup(self) -> None:
        self.backup.write(0, b"\x00" * _HEADER)

    # -- survivor side --------------------------------------------------------

    def fetch_backup_of(
        self, peer: str
    ) -> Generator[Event, Any, Optional[bytes]]:
        """Remote-read a suspected peer's backup slot.

        Returns the pending message, or None when the slot is clear or
        the peer is unreachable.
        """
        region = self.node.region_of(peer, BACKUP_REGION)
        qp = self.node.qp_to(peer)
        completion = yield from qp.read(region, 0, region.size)
        if completion.status is not WcStatus.SUCCESS:
            return None
        data = completion.data
        (length,) = struct.unpack_from("<I", data, 0)
        if length == 0 or _HEADER + length > len(data):
            return None
        return bytes(data[_HEADER : _HEADER + length])
