"""The Hamband runtime (paper §4) over the simulated RDMA fabric.

The runtime is a layered composition (see docs/runtime_architecture.md):
:class:`RingTransport` (one-sided ring data plane), :class:`ApplyEngine`
(σ/A/summaries + traversal), :class:`ConflictCoordinator` (Mu-backed
leader path), and :class:`ControlPlane` (rare-path two-sided messaging),
instrumented through the :class:`RuntimeProbe` seam and fronted by the
:class:`HambandNode` façade.

Observability rides on the probe seam: :class:`TracingProbe` /
:class:`TraceRecorder` (``runtime/trace.py``) record causal event
traces with per-phase latency histograms, and :class:`TraceChecker`
(``runtime/checker.py``) replays a recorded trace offline to verify
the paper's integrity and convergence obligations.
"""

from .applier import ApplyEngine
from .broadcast import ReliableBroadcast
from .checker import (
    CheckReport,
    ShardedCheckReport,
    ShardedTraceChecker,
    TraceChecker,
    Violation,
)
from .cluster import HambandCluster
from .conflict import ConflictCoordinator
from .control import ControlPlane
from .heartbeat import FailureDetector, Heartbeat
from .membership import MembershipEpoch, join_cluster, leave_cluster
from .node import (
    HambandNode,
    ImpermissibleError,
    NotLeaderError,
    RuntimeConfig,
    SubmitError,
)
from .probe import (
    CountingProbe,
    RuntimeProbe,
    rollup_node_stats,
    rollup_snapshots,
)
from .ringbuffer import (
    RingCorruptionError,
    RingError,
    RingReader,
    RingWriter,
    ring_region_size,
)
from .scrubber import Scrubber
from .sharding import ShardedCluster, ShardRouter
from .statexfer import StateTransfer
from .stream_checker import CheckpointState, StreamingChecker
from .telemetry import MetricsEmitter
from .trace import ShardedRecorder, TraceEvent, TraceRecorder, TracingProbe
from .txn import TxnCoordinator, TxnOp, TxnOutcome
from .transport import RingTransport
from .summary import SummarySlot, render_summary, slot_size_for
from .wire import (
    StringTable,
    WireCodec,
    WireError,
    decode_call_packet,
    decode_value,
    encode_call_packet,
    encode_value,
)

__all__ = [
    "ApplyEngine",
    "CheckReport",
    "CheckpointState",
    "ConflictCoordinator",
    "ControlPlane",
    "CountingProbe",
    "FailureDetector",
    "HambandCluster",
    "HambandNode",
    "Heartbeat",
    "RingTransport",
    "RuntimeProbe",
    "ImpermissibleError",
    "MembershipEpoch",
    "MetricsEmitter",
    "NotLeaderError",
    "ReliableBroadcast",
    "RingCorruptionError",
    "RingError",
    "RingReader",
    "RingWriter",
    "RuntimeConfig",
    "Scrubber",
    "ShardRouter",
    "ShardedCheckReport",
    "ShardedCluster",
    "ShardedRecorder",
    "ShardedTraceChecker",
    "StateTransfer",
    "StreamingChecker",
    "StringTable",
    "SubmitError",
    "SummarySlot",
    "TraceChecker",
    "TraceEvent",
    "TraceRecorder",
    "TracingProbe",
    "TxnCoordinator",
    "TxnOp",
    "TxnOutcome",
    "Violation",
    "WireCodec",
    "WireError",
    "decode_call_packet",
    "decode_value",
    "encode_call_packet",
    "encode_value",
    "join_cluster",
    "leave_cluster",
    "render_summary",
    "ring_region_size",
    "rollup_node_stats",
    "rollup_snapshots",
    "slot_size_for",
]
