"""The Hamband runtime (paper §4) over the simulated RDMA fabric."""

from .broadcast import ReliableBroadcast
from .cluster import HambandCluster
from .heartbeat import FailureDetector, Heartbeat
from .node import (
    HambandNode,
    ImpermissibleError,
    NotLeaderError,
    RuntimeConfig,
    SubmitError,
)
from .ringbuffer import RingError, RingReader, RingWriter, ring_region_size
from .summary import SummarySlot, render_summary, slot_size_for
from .wire import (
    WireError,
    decode_call_packet,
    decode_value,
    encode_call_packet,
    encode_value,
)

__all__ = [
    "FailureDetector",
    "HambandCluster",
    "HambandNode",
    "Heartbeat",
    "ImpermissibleError",
    "NotLeaderError",
    "ReliableBroadcast",
    "RingError",
    "RingReader",
    "RingWriter",
    "RuntimeConfig",
    "SubmitError",
    "SummarySlot",
    "WireError",
    "decode_call_packet",
    "decode_value",
    "encode_call_packet",
    "encode_value",
    "render_summary",
    "ring_region_size",
    "slot_size_for",
]
