"""Single-writer ring buffers with canary bytes (paper §4 "Meta-data").

Each F and L buffer is a memory region at the *reader's* node, written
by exactly one remote peer:

- the writer keeps the **tail** index locally (it is the only writer,
  so no synchronization is needed — the paper's argument for avoiding
  RDMA atomics),
- the reader keeps the **head** index locally,
- every record ends in a **canary byte**; the reader only consumes a
  record whose canary carries the generation it expects, so a record
  that has not landed yet (or a slot left over from a previous lap) is
  skipped and retried on the next traversal,
- slots before the head are implicitly free and are reused on the next
  lap ("to avoid memory overflow, these locations are reused").

The region is divided into fixed-size slots.  Two record layouts share
the rings, discriminated by the top bit of the 4-byte length field
(slot sizes are far below 2**31, so the bit is free) — the same
first-byte dispatch trick the wire codec uses for v1/v2:

- **v1 (legacy)**: ``length(4) | payload | canary(1)``.  The canary
  detects *incomplete* writes by generation but silently accepts
  bitflips and torn interior bytes — a one-sided RDMA write is not
  atomic.
- **v2 (checksummed)**: ``length(4, MSB set) | payload | canary(1) |
  crc(4)``, where the CRC covers length + payload + canary (so it
  binds the generation, not just the bytes).  A record whose canary
  claims the expected generation but whose CRC disagrees is *corrupt*
  (bitflipped or torn-interior) and is rejected loudly via
  :class:`RingCorruptionError` so the runtime can quarantine and
  repair the slot instead of delivering garbage.

Readers auto-detect the layout per record; ``RingWriter(integrity=...)``
selects what new records ship (``RuntimeConfig.ring_integrity``, on by
default).  The generation is ``1 + (lap % 251)``, never zero, so a
zeroed region never yields a valid canary.
"""

from __future__ import annotations

import struct
import zlib
from typing import Optional

from ..rdma import MemoryRegion

__all__ = [
    "RingReader",
    "RingWriter",
    "RingError",
    "RingCorruptionError",
    "classify_corruption",
    "record_crc",
    "record_overhead",
    "record_status",
    "ring_region_size",
]

_LEN_BYTES = 4
_GENERATIONS = 251  # prime, and fits a byte with zero excluded

#: Top bit of the length field marks the checksummed v2 layout.
_INTEGRITY_FLAG = 0x8000_0000
_LEN_MASK = _INTEGRITY_FLAG - 1
_CRC_BYTES = 4


def record_crc(data: bytes) -> int:
    """Checksum over a record's length field + payload + canary.

    Fills the CRC32C role from the integrity literature; the stdlib
    ships no Castagnoli implementation, so the C-speed ``zlib.crc32``
    (ISO-HDLC polynomial) stands in — what matters here is end-to-end
    detection of bitflips and torn interior writes, not the polynomial.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


class RingError(Exception):
    """Ring misuse: oversized record or writer overrun."""


class RingCorruptionError(RingError):
    """A checksummed record failed CRC verification.

    Raised when a slot's canary claims a plausible generation but the
    record's CRC disagrees — a bitflip or a torn interior write landed.
    Carries the absolute record index so the recovery path can
    quarantine and refetch exactly that slot.
    """

    def __init__(self, message: str, index: int):
        super().__init__(message)
        self.index = index


def ring_region_size(slots: int, slot_size: int) -> int:
    """Region size to pass to ``register`` for a ring of this shape."""
    return slots * slot_size


def record_overhead(integrity: bool) -> int:
    """Per-record framing bytes: length + canary (+ CRC trailer).

    Payload-size checks outside the writer (e.g. the leader's batch
    packing) must use this instead of hard-coding the v1 overhead.
    """
    return _LEN_BYTES + 1 + (_CRC_BYTES if integrity else 0)


def _generation(index: int, slots: int) -> int:
    return 1 + (index // slots) % _GENERATIONS


def _split_slot(slot: bytes) -> Optional[tuple[int, int, bool]]:
    """Decode a slot's framing: ``(payload_length, canary, checksummed)``.

    Validates the length field against the actual slot bytes *before*
    any further indexing, so hostile or torn bytes can never surface a
    ``struct.error``/``IndexError`` out of the parse path.  Returns
    None when the slot is too short or the length field (either
    layout) points outside the slot.
    """
    if len(slot) < _LEN_BYTES + 1:
        return None  # cannot even hold a length field + canary
    (field,) = struct.unpack_from("<I", slot, 0)
    checksummed = bool(field & _INTEGRITY_FLAG)
    length = field & _LEN_MASK
    overhead = _LEN_BYTES + 1 + (_CRC_BYTES if checksummed else 0)
    if length > len(slot) - overhead:
        return None  # garbage or partially-landed length
    return length, slot[_LEN_BYTES + length], checksummed


def _crc_ok(slot: bytes, length: int) -> bool:
    """Verify a v2 record's stored CRC against its bytes."""
    end = _LEN_BYTES + length + 1
    (stored,) = struct.unpack_from("<I", slot, end)
    return record_crc(bytes(slot[:end])) == stored


def scan_frontier(raw: bytes, head: int, slots: int,
                  slot_size: int) -> Optional[int]:
    """Infer the writer's frontier (next index it will claim) from a
    raw snapshot of one ring region.

    Each valid slot's canary names its record's generation, and the
    single writer claims indices monotonically, so the highest absolute
    index present plus one is the frontier.  The lap is recovered as
    the smallest lap at or beyond the reader's whose generation matches
    the canary — consistent while the writer is fewer than 251 laps
    ahead, the same horizon as the reader's lap detection.  Checksummed
    slots that fail CRC are skipped (a corrupt canary must not invent a
    frontier).  Returns None when no slot holds a parseable record.
    """
    base_lap = head // slots
    frontier = None
    for s in range(slots):
        slot = raw[s * slot_size : (s + 1) * slot_size]
        parts = _split_slot(slot)
        if parts is None:
            continue  # garbage or partially-landed record
        length, canary, checksummed = parts
        if canary == 0:
            continue  # virgin slot
        if checksummed and not _crc_ok(slot, length):
            continue  # corrupt record: its canary proves nothing
        lap = base_lap + (canary - 1 - base_lap) % _GENERATIONS
        index = lap * slots + s
        if frontier is None or index >= frontier:
            frontier = index + 1
    return frontier


def parse_record(slot: bytes, index: int, slots: int) -> Optional[bytes]:
    """Parse one slot's bytes as the record for absolute ``index``.

    Returns the full record (length + payload + canary, plus the CRC
    trailer for checksummed records) when the slot holds a valid record
    of ``index``'s generation, else None — a checksummed record whose
    CRC fails is *not* valid, so repair paths treat corrupt slots
    exactly like holes and refetch them.  Shared by the ring reader,
    the F-ring repair path, and Mu's log reconciliation.
    """
    parts = _split_slot(slot)
    if parts is None:
        return None
    length, canary, checksummed = parts
    if canary != _generation(index, slots):
        return None
    end = _LEN_BYTES + length + 1
    if checksummed:
        if not _crc_ok(slot, length):
            return None
        end += _CRC_BYTES
    return bytes(slot[:end])


def record_status(slot: bytes, index: int, slots: int) -> str:
    """Classify one slot relative to absolute ``index``'s record.

    - ``"valid"``: holds ``index``'s record (CRC-verified when
      checksummed),
    - ``"empty"``: virgin, a previous lap's intact record, or framing
      bytes that have not fully landed — nothing wrong, just absent,
    - ``"corrupt"``: a checksummed record claims a plausible generation
      but fails CRC — a bitflip or torn interior write landed.

    The repair path uses this to tell *holes* (record never landed)
    from *silent corruption* (record landed wrong), feeding the
    ``torn_detected``/``crc_rejects`` counters.
    """
    parts = _split_slot(slot)
    if parts is None:
        return "empty"
    length, canary, checksummed = parts
    if canary == _generation(index, slots):
        if checksummed and not _crc_ok(slot, length):
            return "corrupt"
        return "valid"
    if canary == 0:
        return "empty"
    if checksummed and not _crc_ok(slot, length):
        return "corrupt"
    return "empty"


def classify_corruption(before: bytes, authoritative: bytes) -> str:
    """Classify a corrupt slot's pre-repair bytes: bitflip or torn?

    ``before`` is what the slot held when CRC verification rejected it;
    ``authoritative`` is the correct record fetched from a healthy
    copy.  A *torn* write lands a prefix of the record and leaves the
    tail holding whatever was there before (zeros on a virgin lap), so
    the bytes match up to some cut and then mostly diverge; a *bitflip*
    matches everywhere except isolated flipped bytes.  The heuristic is
    deterministic: with more than half the post-divergence tail
    matching the authoritative record it is a ``"bitflip"``, otherwise
    ``"torn"``.
    """
    prefix = 0
    limit = min(len(before), len(authoritative))
    while prefix < limit and before[prefix] == authoritative[prefix]:
        prefix += 1
    if prefix >= len(authoritative):
        return "bitflip"  # diverges only past the record: noise
    tail = len(authoritative) - prefix
    matching = sum(
        1
        for j in range(prefix, len(authoritative))
        if j < len(before) and before[j] == authoritative[j]
    )
    return "bitflip" if matching * 2 >= tail else "torn"


class RingWriter:
    """The single remote writer's view: produces (offset, bytes) records.

    The writer does not touch the region directly — it renders each
    record and hands (offset, payload) to the caller, which issues one
    RDMA write per record.  A local mirror tracks how many records were
    produced; ``credits`` throttling is the writer's guard against
    lapping a slow reader (the runtime sizes rings generously and
    asserts on overrun rather than blocking).
    """

    def __init__(self, slots: int, slot_size: int,
                 integrity: bool = False):
        overhead = _LEN_BYTES + 1 + (_CRC_BYTES if integrity else 0)
        if slots <= 0 or slot_size <= overhead:
            raise RingError("ring too small")
        self.slots = slots
        self.slot_size = slot_size
        #: Emit checksummed v2 records (length MSB set, CRC trailer).
        #: Readers auto-detect per record, so mixed rings — e.g. after
        #: a rolling config change — stay readable.
        self.integrity = integrity
        self.tail = 0  # kept locally by the single writer
        #: Optional flow-control feedback; None disables the overrun
        #: check (the runtime sizes rings so the reader never lags a
        #: full lap, and the reader independently detects being lapped).
        self.reader_acked: Optional[int] = None

    @property
    def max_payload(self) -> int:
        overhead = _LEN_BYTES + 1 + (_CRC_BYTES if self.integrity else 0)
        return self.slot_size - overhead

    def render(self, payload: bytes) -> tuple[int, bytes]:
        """Render the next record; returns (region offset, record bytes).

        Only the used prefix of the slot is rendered — length, payload,
        and the canary byte immediately after the payload (the paper:
        "each call in the buffer contains a canary bit as the last
        bit") — so the RDMA write ships record-sized, not slot-sized.
        """
        record = self.build(payload)
        return self.claim(), record

    def build(self, payload: bytes) -> bytes:
        """Record bytes for the *current* tail, without claiming it.

        Fan-out writers with lockstep tails (the F mirror and the
        per-peer writers) render the record ONCE and :meth:`claim` a
        slot per writer — the generation byte only depends on the tail
        index, which is identical across them.
        """
        if len(payload) > self.max_payload:
            raise RingError(
                f"payload of {len(payload)} bytes exceeds slot capacity "
                f"{self.max_payload}"
            )
        body = _LEN_BYTES + len(payload) + 1
        if not self.integrity:
            record = bytearray(body)
            struct.pack_into("<I", record, 0, len(payload))
            record[_LEN_BYTES : _LEN_BYTES + len(payload)] = payload
            record[-1] = _generation(self.tail, self.slots)
            return bytes(record)
        record = bytearray(body + _CRC_BYTES)
        struct.pack_into("<I", record, 0, len(payload) | _INTEGRITY_FLAG)
        record[_LEN_BYTES : _LEN_BYTES + len(payload)] = payload
        record[body - 1] = _generation(self.tail, self.slots)
        struct.pack_into("<I", record, body,
                         record_crc(bytes(record[:body])))
        return bytes(record)

    def claim(self) -> int:
        """Claim the tail slot (overrun check + advance); returns its
        region offset.  ``render`` = ``build`` + ``claim``."""
        if (
            self.reader_acked is not None
            and self.tail - self.reader_acked >= self.slots
        ):
            raise RingError("ring overrun: writer lapped the reader")
        offset = (self.tail % self.slots) * self.slot_size
        self.tail += 1
        return offset

    def ack_up_to(self, count: int) -> None:
        """Record reader progress (fed back out of band for flow control).

        A no-op while tracking is disabled (``reader_acked is None``) —
        once a writer stops throttling on a dead reader it stays in
        ring-sizing mode.
        """
        if self.reader_acked is not None:
            self.reader_acked = max(self.reader_acked, count)


class RingReader:
    """The local reader's view over its own memory region."""

    def __init__(self, region: MemoryRegion, slots: int, slot_size: int):
        if slots * slot_size > region.size:
            raise RingError("region too small for ring shape")
        self.region = region
        self.slots = slots
        self.slot_size = slot_size
        self.head = 0  # kept locally by the single reader

    def peek(self) -> Optional[bytes]:
        """The record at the head, or None if it has not landed yet.

        A canary mismatch means either nothing has been written to the
        slot this lap or a write is still in flight — in both cases the
        paper's traversal simply retries later.
        """
        offset = (self.head % self.slots) * self.slot_size
        slot = self.region.read(offset, self.slot_size)
        return self._parse_slot(slot, self.head)

    def _parse_slot(self, slot: bytes, index: int) -> Optional[bytes]:
        """Parse one slot as the record for absolute ``index``.

        The only canaries a reader may legitimately see besides the
        expected generation are 0 (virgin slot) and the *previous*
        lap's generation (a record not yet overwritten).  ANY other
        generation means the single writer has moved past us — whether
        by one lap or twenty — so being lapped is detected loudly
        rather than silently reading None forever.  (The generation
        counter wraps mod 251, so a writer exactly 250 laps ahead is
        indistinguishable from the previous lap; the runtime's rings
        detect the overrun ~250 laps earlier.)

        Checksummed (v2) records are CRC-verified before any canary
        verdict is trusted:

        - expected generation + bad CRC ⇒ :class:`RingCorruptionError`
          — a bitflip or torn interior write would otherwise be
          *delivered*,
        - foreign generation + bad CRC ⇒ also corruption — a flipped
          canary byte must not fake a "lapped" verdict and trigger a
          needless resync,
        - previous-lap generation + bad CRC ⇒ None — the overwrite for
          this lap is legitimately in flight (torn writes land exactly
          this state); the probe-ahead repair path picks it up if it
          never completes.

        The length field is validated against the actual slot bytes
        before any indexing, so hostile bytes surface as None or a
        RingError subclass — never ``struct.error``/``IndexError``.
        """
        parts = _split_slot(slot)
        if parts is None:
            return None  # short slot, stale or garbage length
        length, canary, checksummed = parts
        if canary == _generation(index, self.slots):
            if checksummed and not _crc_ok(slot, length):
                raise RingCorruptionError(
                    f"record {index} failed CRC: bitflipped or "
                    f"torn-interior write", index,
                )
            return slot[_LEN_BYTES : _LEN_BYTES + length]
        if canary == 0:
            return None  # virgin slot: nothing written yet
        if index >= self.slots and canary == _generation(
            index - self.slots, self.slots
        ):
            return None  # previous lap's record: ours is in flight
        if checksummed and not _crc_ok(slot, length):
            raise RingCorruptionError(
                f"record {index} failed CRC under a foreign canary: "
                f"corruption, not a lap", index,
            )
        raise RingError(
            "reader lapped: a record was overwritten before it "
            "was consumed (size the ring larger)"
        )

    def peek_run(self, max_records: int = 64) -> list[bytes]:
        """Consecutive landed records starting at the head, oldest first.

        One region read covers the whole run (up to ``max_records``,
        clamped at the ring's wrap point), so a sweep that finds a
        train of records parses each slot once instead of re-issuing a
        region read per record.  The caller consumes via
        :meth:`advance` — records beyond what it consumes are simply
        re-peeked on the next sweep.
        """
        first = self.head % self.slots
        count = min(max_records, self.slots - first)
        if count <= 0:
            return []
        raw = self.region.read(first * self.slot_size,
                               count * self.slot_size)
        run: list[bytes] = []
        for i in range(count):
            slot = raw[i * self.slot_size : (i + 1) * self.slot_size]
            payload = self._parse_slot(slot, self.head + i)
            if payload is None:
                break
            run.append(payload)
        return run

    def advance(self) -> None:
        """Consume the head record (caller must have peeked it)."""
        self.head += 1

    def fast_forward(self, index: int) -> None:
        """Skip the head forward to absolute ``index`` (never backward).

        The recovery path for a *lapped* reader: records between the
        old head and ``index`` were overwritten in every surviving copy
        and must be recovered out of band (summaries, broadcast
        backups) — the ring itself can only resume from the writer's
        surviving window.
        """
        if index > self.head:
            self.head = index

    def quarantine(self, index: int) -> None:
        """Zero absolute ``index``'s slot so a corrupt record reads as
        a hole.

        The region lives at the reader's node, so this is a local
        write — no RDMA involved.  After quarantine the slot parses as
        virgin and the normal hole-repair machinery (probe-ahead
        refetch from an authoritative copy) fills it back in.
        """
        offset = (index % self.slots) * self.slot_size
        self.region.write(offset, b"\x00" * self.slot_size)

    def try_read(self) -> Optional[bytes]:
        payload = self.peek()
        if payload is not None:
            self.advance()
        return payload
