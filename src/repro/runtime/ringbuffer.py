"""Single-writer ring buffers with canary bytes (paper §4 "Meta-data").

Each F and L buffer is a memory region at the *reader's* node, written
by exactly one remote peer:

- the writer keeps the **tail** index locally (it is the only writer,
  so no synchronization is needed — the paper's argument for avoiding
  RDMA atomics),
- the reader keeps the **head** index locally,
- every record ends in a **canary byte**; the reader only consumes a
  record whose canary carries the generation it expects, so a record
  that has not landed yet (or a slot left over from a previous lap) is
  skipped and retried on the next traversal,
- slots before the head are implicitly free and are reused on the next
  lap ("to avoid memory overflow, these locations are reused").

The region is divided into fixed-size slots; a record is a 4-byte
length, the payload, and the canary in the slot's final byte.  The
generation is ``1 + (lap % 251)``, never zero, so a zeroed region never
yields a valid canary.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..rdma import MemoryRegion

__all__ = ["RingReader", "RingWriter", "RingError", "ring_region_size"]

_LEN_BYTES = 4
_GENERATIONS = 251  # prime, and fits a byte with zero excluded


class RingError(Exception):
    """Ring misuse: oversized record or writer overrun."""


def ring_region_size(slots: int, slot_size: int) -> int:
    """Region size to pass to ``register`` for a ring of this shape."""
    return slots * slot_size


def _generation(index: int, slots: int) -> int:
    return 1 + (index // slots) % _GENERATIONS


def scan_frontier(raw: bytes, head: int, slots: int,
                  slot_size: int) -> Optional[int]:
    """Infer the writer's frontier (next index it will claim) from a
    raw snapshot of one ring region.

    Each valid slot's canary names its record's generation, and the
    single writer claims indices monotonically, so the highest absolute
    index present plus one is the frontier.  The lap is recovered as
    the smallest lap at or beyond the reader's whose generation matches
    the canary — consistent while the writer is fewer than 251 laps
    ahead, the same horizon as the reader's lap detection.  Returns
    None when no slot holds a parseable record.
    """
    base_lap = head // slots
    frontier = None
    for s in range(slots):
        slot = raw[s * slot_size : (s + 1) * slot_size]
        (length,) = struct.unpack_from("<I", slot, 0)
        if length > slot_size - _LEN_BYTES - 1:
            continue  # garbage or partially-landed record
        canary = slot[_LEN_BYTES + length]
        if canary == 0:
            continue  # virgin slot
        lap = base_lap + (canary - 1 - base_lap) % _GENERATIONS
        index = lap * slots + s
        if frontier is None or index >= frontier:
            frontier = index + 1
    return frontier


def parse_record(slot: bytes, index: int, slots: int) -> Optional[bytes]:
    """Parse one slot's bytes as the record for absolute ``index``.

    Returns the full record prefix (length + payload + canary) when the
    slot holds a valid record of ``index``'s generation, else None.
    Shared by the ring reader and Mu's log reconciliation.
    """
    (length,) = struct.unpack_from("<I", slot, 0)
    if length > len(slot) - _LEN_BYTES - 1:
        return None
    if slot[_LEN_BYTES + length] != _generation(index, slots):
        return None
    return bytes(slot[: _LEN_BYTES + length + 1])


class RingWriter:
    """The single remote writer's view: produces (offset, bytes) records.

    The writer does not touch the region directly — it renders each
    record and hands (offset, payload) to the caller, which issues one
    RDMA write per record.  A local mirror tracks how many records were
    produced; ``credits`` throttling is the writer's guard against
    lapping a slow reader (the runtime sizes rings generously and
    asserts on overrun rather than blocking).
    """

    def __init__(self, slots: int, slot_size: int):
        if slots <= 0 or slot_size <= _LEN_BYTES + 1:
            raise RingError("ring too small")
        self.slots = slots
        self.slot_size = slot_size
        self.tail = 0  # kept locally by the single writer
        #: Optional flow-control feedback; None disables the overrun
        #: check (the runtime sizes rings so the reader never lags a
        #: full lap, and the reader independently detects being lapped).
        self.reader_acked: Optional[int] = None

    @property
    def max_payload(self) -> int:
        return self.slot_size - _LEN_BYTES - 1

    def render(self, payload: bytes) -> tuple[int, bytes]:
        """Render the next record; returns (region offset, record bytes).

        Only the used prefix of the slot is rendered — length, payload,
        and the canary byte immediately after the payload (the paper:
        "each call in the buffer contains a canary bit as the last
        bit") — so the RDMA write ships record-sized, not slot-sized.
        """
        record = self.build(payload)
        return self.claim(), record

    def build(self, payload: bytes) -> bytes:
        """Record bytes for the *current* tail, without claiming it.

        Fan-out writers with lockstep tails (the F mirror and the
        per-peer writers) render the record ONCE and :meth:`claim` a
        slot per writer — the generation byte only depends on the tail
        index, which is identical across them.
        """
        if len(payload) > self.max_payload:
            raise RingError(
                f"payload of {len(payload)} bytes exceeds slot capacity "
                f"{self.max_payload}"
            )
        record = bytearray(_LEN_BYTES + len(payload) + 1)
        struct.pack_into("<I", record, 0, len(payload))
        record[_LEN_BYTES : _LEN_BYTES + len(payload)] = payload
        record[-1] = _generation(self.tail, self.slots)
        return bytes(record)

    def claim(self) -> int:
        """Claim the tail slot (overrun check + advance); returns its
        region offset.  ``render`` = ``build`` + ``claim``."""
        if (
            self.reader_acked is not None
            and self.tail - self.reader_acked >= self.slots
        ):
            raise RingError("ring overrun: writer lapped the reader")
        offset = (self.tail % self.slots) * self.slot_size
        self.tail += 1
        return offset

    def ack_up_to(self, count: int) -> None:
        """Record reader progress (fed back out of band for flow control).

        A no-op while tracking is disabled (``reader_acked is None``) —
        once a writer stops throttling on a dead reader it stays in
        ring-sizing mode.
        """
        if self.reader_acked is not None:
            self.reader_acked = max(self.reader_acked, count)


class RingReader:
    """The local reader's view over its own memory region."""

    def __init__(self, region: MemoryRegion, slots: int, slot_size: int):
        if slots * slot_size > region.size:
            raise RingError("region too small for ring shape")
        self.region = region
        self.slots = slots
        self.slot_size = slot_size
        self.head = 0  # kept locally by the single reader

    def peek(self) -> Optional[bytes]:
        """The record at the head, or None if it has not landed yet.

        A canary mismatch means either nothing has been written to the
        slot this lap or a write is still in flight — in both cases the
        paper's traversal simply retries later.
        """
        offset = (self.head % self.slots) * self.slot_size
        slot = self.region.read(offset, self.slot_size)
        return self._parse_slot(slot, self.head)

    def _parse_slot(self, slot: bytes, index: int) -> Optional[bytes]:
        """Parse one slot as the record for absolute ``index``.

        The only canaries a reader may legitimately see besides the
        expected generation are 0 (virgin slot) and the *previous*
        lap's generation (a record not yet overwritten).  ANY other
        generation means the single writer has moved past us — whether
        by one lap or twenty — so being lapped is detected loudly
        rather than silently reading None forever.  (The generation
        counter wraps mod 251, so a writer exactly 250 laps ahead is
        indistinguishable from the previous lap; the runtime's rings
        detect the overrun ~250 laps earlier.)
        """
        (length,) = struct.unpack_from("<I", slot, 0)
        if length > self.slot_size - _LEN_BYTES - 1:
            return None  # stale or garbage length: retry later
        canary = slot[_LEN_BYTES + length]
        if canary == _generation(index, self.slots):
            return slot[_LEN_BYTES : _LEN_BYTES + length]
        if canary == 0:
            return None  # virgin slot: nothing written yet
        if index >= self.slots and canary == _generation(
            index - self.slots, self.slots
        ):
            return None  # previous lap's record: ours is in flight
        raise RingError(
            "reader lapped: a record was overwritten before it "
            "was consumed (size the ring larger)"
        )

    def peek_run(self, max_records: int = 64) -> list[bytes]:
        """Consecutive landed records starting at the head, oldest first.

        One region read covers the whole run (up to ``max_records``,
        clamped at the ring's wrap point), so a sweep that finds a
        train of records parses each slot once instead of re-issuing a
        region read per record.  The caller consumes via
        :meth:`advance` — records beyond what it consumes are simply
        re-peeked on the next sweep.
        """
        first = self.head % self.slots
        count = min(max_records, self.slots - first)
        if count <= 0:
            return []
        raw = self.region.read(first * self.slot_size,
                               count * self.slot_size)
        run: list[bytes] = []
        for i in range(count):
            slot = raw[i * self.slot_size : (i + 1) * self.slot_size]
            payload = self._parse_slot(slot, self.head + i)
            if payload is None:
                break
            run.append(payload)
        return run

    def advance(self) -> None:
        """Consume the head record (caller must have peeked it)."""
        self.head += 1

    def fast_forward(self, index: int) -> None:
        """Skip the head forward to absolute ``index`` (never backward).

        The recovery path for a *lapped* reader: records between the
        old head and ``index`` were overwritten in every surviving copy
        and must be recovered out of band (summaries, broadcast
        backups) — the ring itself can only resume from the writer's
        surviving window.
        """
        if index > self.head:
            self.head = index

    def try_read(self) -> Optional[bytes]:
        payload = self.peek()
        if payload is not None:
            self.advance()
        return payload
