"""Single-writer ring buffers with canary bytes (paper §4 "Meta-data").

Each F and L buffer is a memory region at the *reader's* node, written
by exactly one remote peer:

- the writer keeps the **tail** index locally (it is the only writer,
  so no synchronization is needed — the paper's argument for avoiding
  RDMA atomics),
- the reader keeps the **head** index locally,
- every record ends in a **canary byte**; the reader only consumes a
  record whose canary carries the generation it expects, so a record
  that has not landed yet (or a slot left over from a previous lap) is
  skipped and retried on the next traversal,
- slots before the head are implicitly free and are reused on the next
  lap ("to avoid memory overflow, these locations are reused").

The region is divided into fixed-size slots; a record is a 4-byte
length, the payload, and the canary in the slot's final byte.  The
generation is ``1 + (lap % 251)``, never zero, so a zeroed region never
yields a valid canary.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..rdma import MemoryRegion

__all__ = ["RingReader", "RingWriter", "RingError", "ring_region_size"]

_LEN_BYTES = 4
_GENERATIONS = 251  # prime, and fits a byte with zero excluded


class RingError(Exception):
    """Ring misuse: oversized record or writer overrun."""


def ring_region_size(slots: int, slot_size: int) -> int:
    """Region size to pass to ``register`` for a ring of this shape."""
    return slots * slot_size


def _generation(index: int, slots: int) -> int:
    return 1 + (index // slots) % _GENERATIONS


def parse_record(slot: bytes, index: int, slots: int) -> Optional[bytes]:
    """Parse one slot's bytes as the record for absolute ``index``.

    Returns the full record prefix (length + payload + canary) when the
    slot holds a valid record of ``index``'s generation, else None.
    Shared by the ring reader and Mu's log reconciliation.
    """
    (length,) = struct.unpack_from("<I", slot, 0)
    if length > len(slot) - _LEN_BYTES - 1:
        return None
    if slot[_LEN_BYTES + length] != _generation(index, slots):
        return None
    return bytes(slot[: _LEN_BYTES + length + 1])


class RingWriter:
    """The single remote writer's view: produces (offset, bytes) records.

    The writer does not touch the region directly — it renders each
    record and hands (offset, payload) to the caller, which issues one
    RDMA write per record.  A local mirror tracks how many records were
    produced; ``credits`` throttling is the writer's guard against
    lapping a slow reader (the runtime sizes rings generously and
    asserts on overrun rather than blocking).
    """

    def __init__(self, slots: int, slot_size: int):
        if slots <= 0 or slot_size <= _LEN_BYTES + 1:
            raise RingError("ring too small")
        self.slots = slots
        self.slot_size = slot_size
        self.tail = 0  # kept locally by the single writer
        #: Optional flow-control feedback; None disables the overrun
        #: check (the runtime sizes rings so the reader never lags a
        #: full lap, and the reader independently detects being lapped).
        self.reader_acked: Optional[int] = None

    @property
    def max_payload(self) -> int:
        return self.slot_size - _LEN_BYTES - 1

    def render(self, payload: bytes) -> tuple[int, bytes]:
        """Render the next record; returns (region offset, record bytes).

        Only the used prefix of the slot is rendered — length, payload,
        and the canary byte immediately after the payload (the paper:
        "each call in the buffer contains a canary bit as the last
        bit") — so the RDMA write ships record-sized, not slot-sized.
        """
        if len(payload) > self.max_payload:
            raise RingError(
                f"payload of {len(payload)} bytes exceeds slot capacity "
                f"{self.max_payload}"
            )
        if (
            self.reader_acked is not None
            and self.tail - self.reader_acked >= self.slots
        ):
            raise RingError("ring overrun: writer lapped the reader")
        record = bytearray(_LEN_BYTES + len(payload) + 1)
        struct.pack_into("<I", record, 0, len(payload))
        record[_LEN_BYTES : _LEN_BYTES + len(payload)] = payload
        record[-1] = _generation(self.tail, self.slots)
        offset = (self.tail % self.slots) * self.slot_size
        self.tail += 1
        return offset, bytes(record)

    def ack_up_to(self, count: int) -> None:
        """Record reader progress (fed back out of band for flow control).

        A no-op while tracking is disabled (``reader_acked is None``) —
        once a writer stops throttling on a dead reader it stays in
        ring-sizing mode.
        """
        if self.reader_acked is not None:
            self.reader_acked = max(self.reader_acked, count)


class RingReader:
    """The local reader's view over its own memory region."""

    def __init__(self, region: MemoryRegion, slots: int, slot_size: int):
        if slots * slot_size > region.size:
            raise RingError("region too small for ring shape")
        self.region = region
        self.slots = slots
        self.slot_size = slot_size
        self.head = 0  # kept locally by the single reader

    def peek(self) -> Optional[bytes]:
        """The record at the head, or None if it has not landed yet.

        A canary mismatch means either nothing has been written to the
        slot this lap or a write is still in flight — in both cases the
        paper's traversal simply retries later.
        """
        offset = (self.head % self.slots) * self.slot_size
        slot = self.region.read(offset, self.slot_size)
        (length,) = struct.unpack_from("<I", slot, 0)
        if length > self.slot_size - _LEN_BYTES - 1:
            return None  # stale or garbage length: retry later
        canary = slot[_LEN_BYTES + length]
        if canary != _generation(self.head, self.slots):
            if canary == _generation(self.head + self.slots, self.slots):
                raise RingError(
                    "reader lapped: a record was overwritten before it "
                    "was consumed (size the ring larger)"
                )
            return None
        return slot[_LEN_BYTES : _LEN_BYTES + length]

    def advance(self) -> None:
        """Consume the head record (caller must have peeked it)."""
        self.head += 1

    def try_read(self) -> Optional[bytes]:
        payload = self.peek()
        if payload is not None:
            self.advance()
        return payload
