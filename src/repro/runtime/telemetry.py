"""Live run telemetry: a periodic metrics stream over the probe seam.

:class:`MetricsEmitter` is a background sim process (same idiom as the
scrubber) that samples, at a fixed sim-time interval:

- the cluster-wide probe counter rollup (applies, drained records, CRC
  rejects, repairs, rejections, faults),
- the recorder's per-phase latency histograms (count/mean/p50/p95/
  p99/p999),
- the trace ring's drop accounting, and
- the :class:`~repro.runtime.stream_checker.StreamingChecker`'s live
  progress (events checked, window size, verified/checkpoint seq, lag)

into newline-delimited JSON — one self-contained sample per line, with
sorted keys so a deterministic run emits a deterministic stream.  The
final sample (written by :meth:`close`, after the run settles) carries
``"final": true``.

An optional ``progress`` callback receives a one-line human summary
per sample — the CLI renders it as a live terminal status line during
``repro run/chaos --live-check``.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Optional, TextIO, Union

__all__ = ["MetricsEmitter"]

#: Probe rollup counters surfaced in each sample (summed over labels).
_PROBE_KEYS = (
    "applies",
    "records_drained",
    "crc_rejects",
    "slot_repairs",
    "hole_repairs",
    "ring_resyncs",
    "op_retries",
    "rejections",
    "faults",
    # Gray-failure detection/mitigation (all zero in fixed fd mode).
    "peer_degraded",
    "fd_phi_suspects",
    "hedged_reads",
    "hedge_wins",
    "retry_budget_exhausted",
)


def _total(section: Any) -> int:
    if isinstance(section, dict):
        return sum(section.values())
    return int(section or 0)


class MetricsEmitter:
    """Periodic JSONL metrics sampler for an instrumented run.

    >>> emitter = MetricsEmitter(env, cluster=cluster, recorder=recorder,
    ...                          checker=checker, out="metrics.jsonl")
    >>> emitter.start()
    ... # drive the run ...
    >>> emitter.close()   # final sample + flush

    ``out`` may be a path or an open text file; ``checker`` (a
    :class:`~repro.runtime.stream_checker.StreamingChecker`) and
    ``cluster``/``recorder`` are each optional — absent sources simply
    leave their section out of the sample.
    """

    def __init__(self, env, cluster: Any = None, recorder: Any = None,
                 checker: Any = None,
                 interval_us: float = 200.0,
                 out: Union[str, TextIO, None] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 label: str = ""):
        if interval_us <= 0:
            raise ValueError("metrics interval must be positive")
        self.env = env
        self.cluster = cluster
        self.recorder = recorder
        self.checker = checker
        self.interval_us = interval_us
        self.label = label
        self.progress = progress
        self.samples = 0
        self._fp: Optional[TextIO] = None
        self._owns_fp = False
        if isinstance(out, str):
            self._fp = open(out, "w", encoding="utf-8")
            self._owns_fp = True
        elif out is not None:
            self._fp = out
        self._stopped = False
        self._started = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "MetricsEmitter":
        """Spawn the periodic sampling process."""
        if not self._started:
            self._started = True
            self.env.process(self._loop())
        return self

    def _loop(self):
        while not self._stopped:
            yield self.env.timeout(self.interval_us)
            if self._stopped:
                return
            self.sample()

    def close(self) -> None:
        """Stop sampling, write one final sample, release the file."""
        if self._stopped:
            return
        self._stopped = True
        self.sample(final=True)
        if self._fp is not None:
            self._fp.flush()
            if self._owns_fp:
                self._fp.close()
            self._fp = None

    # -- sampling --------------------------------------------------------

    def sample(self, final: bool = False) -> dict[str, Any]:
        """Take one sample; write it to the stream if one is attached."""
        record: dict[str, Any] = {
            "kind": "metrics",
            "t": self.env.now,
            "sample": self.samples,
        }
        if self.label:
            record["run"] = self.label
        if final:
            record["final"] = True
        if self.cluster is not None:
            stats = self.cluster.stats()
            rollup = stats.get("cluster") or stats.get("global") or {}
            probe = rollup.get("probe", {})
            record["probe"] = {
                key: _total(probe.get(key)) for key in _PROBE_KEYS
            }
            highwater = probe.get("ring_highwater")
            if isinstance(highwater, dict) and highwater:
                record["probe"]["ring_highwater_max"] = max(
                    highwater.values()
                )
        if self.recorder is not None:
            record["trace"] = {
                "dropped": self.recorder.dropped(),
                "gaps": len(self.recorder.drop_gaps()),
            }
            record["phases"] = {
                phase: histogram.summary()
                for phase, histogram in sorted(
                    self.recorder.phase_histograms().items()
                )
            }
        if self.checker is not None:
            record["checker"] = checker_stats = dict(self.checker.stats())
            checker_stats["lag"] = max(
                0, checker_stats["last_seq"] - checker_stats["verified_seq"]
            )
        self.samples += 1
        if self._fp is not None:
            self._fp.write(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
            self._fp.write("\n")
        if self.progress is not None:
            self.progress(self._progress_line(record))
        return record

    def _progress_line(self, record: dict[str, Any]) -> str:
        parts = [f"t={record['t']:.0f}us"]
        checker = record.get("checker")
        if checker:
            verdict = (
                "ok" if not checker["violations"]
                else f"{checker['violations']} VIOLATION(S)"
            )
            parts.append(
                f"checked={checker['events']} window={checker['window']} "
                f"lag={checker['lag']} {verdict}"
            )
        probe = record.get("probe")
        if probe:
            parts.append(f"applies={probe['applies']}")
        phases = record.get("phases")
        if phases:
            apply_phase = phases.get("apply") or phases.get("invoke")
            if apply_phase and apply_phase["count"]:
                parts.append(
                    f"p99={apply_phase['p99']:.1f}us "
                    f"p999={apply_phase['p999']:.1f}us"
                )
        if record.get("final"):
            parts.append("(final)")
        return "[live] " + " ".join(parts)
