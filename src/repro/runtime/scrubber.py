"""Background scrubber: proactive re-verification of ring replicas.

The detect-and-repair paths in :mod:`~repro.runtime.transport` and
:mod:`~repro.runtime.conflict` catch corruption *at consumption time*:
a CRC-rejected record at the reader head is quarantined and refetched
before it can be applied.  But rings are also read *at rest* — they
are the authoritative sources for hole repair, rejoin catch-up, and
lapped-reader resync.  A record corrupted after it was consumed sits
silently in the local replica until some other node repairs *from* it.

:class:`Scrubber` closes that window.  It is a per-node background
worker (spawned only when ``RuntimeConfig.scrub_interval_us > 0``)
that walks the *committed prefix* of every ring replica this node
holds — each peer's F ring and each followed L log — in bounded,
rate-limited windows:

- one ring per tick (round-robin over all replicas),
- at most ``scrub_batch`` slots per tick (one one-sided read of the
  authoritative copy: the origin's F mirror, or the group leader's L
  region),
- a rotating per-ring cursor, so successive ticks cover the whole
  resident prefix and then wrap.

Each local slot in the window is compared against the authoritative
bytes.  A slot that fails to parse (quarantined, torn, or bitflipped)
or parses to *different* record bytes is overwritten with the
authoritative record and counted as a repair.  Because the comparison
is byte-level, the scrubber detects divergence even with ring
integrity **off** — it is the defense-in-depth layer behind the CRC.

Scrubbing repairs the at-rest replica only: a corrupt record that was
already consumed and applied is the consumption-time CRC check's job
(and, failing that, the offline trace checker's).  Determinism: scrub
ticks are pure simulation events, so a seeded chaos run produces the
same scrub schedule — and the same trace — every time.
"""

from __future__ import annotations

from typing import Callable

from ..rdma import RdmaNode, WcStatus
from .config import RuntimeConfig, f_region, l_region
from .probe import RuntimeProbe
from .ringbuffer import classify_corruption, parse_record
from .transport import RingTransport

__all__ = ["Scrubber"]


class Scrubber:
    """Rate-limited background verification of this node's ring copies."""

    def __init__(self, rnode: RdmaNode, transport: RingTransport,
                 config: RuntimeConfig, probe: RuntimeProbe,
                 leader_of: Callable[[str], str],
                 is_failed: Callable[[], bool],
                 is_suspected: Callable[[str], bool]):
        self.rnode = rnode
        self.env = rnode.env
        self.name = rnode.name
        self.transport = transport
        self.config = config
        self.probe = probe
        self.leader_of = leader_of
        self.is_failed = is_failed
        self.is_suspected = is_suspected
        #: Deterministic round-robin order over every replica we hold.
        self._targets: list[tuple[str, str]] = (
            [("F", origin) for origin in sorted(transport.f_readers)]
            + [("L", gid) for gid in sorted(transport.l_readers)]
        )
        self._next = 0
        #: Per-ring rotating cursor (absolute record index).
        self._cursors: dict[str, int] = {}

    def rearm(self) -> None:
        """Rebuild the round-robin target list after a membership change.

        The list is computed at construction; without this re-arm a
        joiner's F ring is never scrubbed (it entered ``f_readers``
        after the list was built) and a departed peer's frozen ring
        stays in rotation forever, wasting ticks on a replica nobody
        authoritative serves any more.  Only CURRENT members' F rings
        are kept — ``f_readers`` deliberately retains departed peers'
        rings as drainable history — plus every followed L log.
        """
        members = set(self.transport.peers)
        self._targets = (
            [("F", origin)
             for origin in sorted(self.transport.f_readers)
             if origin in members]
            + [("L", gid) for gid in sorted(self.transport.l_readers)]
        )
        self._next = 0

    # -- worker ----------------------------------------------------------

    def loop(self):
        """The background worker: one bounded scrub window per tick."""
        cfg = self.config
        while True:
            yield self.env.timeout(cfg.scrub_interval_us)
            if not self._targets or self.is_failed() or not self.rnode.alive:
                continue
            kind, key = self._targets[self._next % len(self._targets)]
            self._next += 1
            if kind == "F":
                # The origin's local mirror is written with plain memory
                # writes (never exposed to in-flight corruption): it is
                # the authoritative copy of its F ring.
                reader = self.transport.f_readers[key]
                source, region_name = key, f_region(key)
            else:
                # The group leader's L region is the log of record; a
                # leader scrubbing its own log has nothing to compare
                # against (Mu's majority is its integrity story).
                source = self.leader_of(key)
                if source == self.name:
                    continue
                reader = self.transport.l_readers[key]
                region_name = l_region(key)
            if source == self.name or self.is_suspected(source):
                continue
            if not self.rnode.fabric.nodes[source].alive:
                continue
            yield from self.scrub_window(
                f"{kind}:{key}", reader, source, region_name
            )

    # -- one window ------------------------------------------------------

    def scrub_window(self, ring: str, reader, source: str,
                     region_name: str):
        """Verify (and repair) one bounded window of ``ring``.

        Reads ``scrub_batch`` slots of the committed prefix from the
        authoritative ``source`` copy in one one-sided read, compares
        byte-for-byte against the local replica, and overwrites any
        slot that fails to parse or parses to different record bytes.
        Returns the number of repaired slots.
        """
        cfg = self.config
        head = reader.head
        lo = max(head - cfg.ring_slots, 0)
        if head <= lo:
            return 0  # nothing committed yet
        cursor = self._cursors.get(ring, lo)
        if cursor < lo or cursor >= head:
            cursor = lo  # wrap (or the window slid past the cursor)
        # Stay inside one contiguous stretch of the circular region so
        # the window is a single read.
        batch = min(
            cfg.scrub_batch,
            head - cursor,
            cfg.ring_slots - cursor % cfg.ring_slots,
        )
        offset = (cursor % cfg.ring_slots) * cfg.slot_size
        self._cursors[ring] = (
            lo if cursor + batch >= head else cursor + batch
        )
        qp = self.rnode.qp_to(source)
        remote = self.rnode.region_of(source, region_name)
        wc = yield from qp.read(remote, offset, batch * cfg.slot_size)
        if wc.status is not WcStatus.SUCCESS or wc.data is None:
            return 0
        repaired = 0
        for i in range(batch):
            index = cursor + i
            auth_slot = bytes(
                wc.data[i * cfg.slot_size : (i + 1) * cfg.slot_size]
            )
            authoritative = parse_record(auth_slot, index, cfg.ring_slots)
            if authoritative is None:
                continue  # the source no longer holds this index
            slot_offset = offset + i * cfg.slot_size
            local_slot = bytes(
                reader.region.read(slot_offset, cfg.slot_size)
            )
            local = parse_record(local_slot, index, cfg.ring_slots)
            authoritative = bytes(authoritative)
            if local is not None and bytes(local) == authoritative:
                continue
            if local is None:
                # Unparseable at rest: a quarantined slot awaiting a
                # source, or corruption the reader never touched.
                corruption = "scrub"
            else:
                # Parseable but divergent: with integrity off a
                # corrupted record can still carry a valid canary —
                # byte comparison is what catches it.
                corruption = classify_corruption(local_slot, authoritative)
            reader.region.write(slot_offset, authoritative)
            self.probe.slot_repair(ring)
            self.probe.trace_repair(ring, index, corruption)
            repaired += 1
        self.probe.scrub_pass(ring)
        return repaired
