"""Layer 3 — leader-ordered conflicting calls (paper §4 + Mu).

:class:`ConflictCoordinator` owns everything leader-shaped at one node:

- the Mu consensus endpoint per synchronization group,
- the per-group serialization queue and its worker (speculative accept,
  decision batching, apply-on-commit),
- the L-ring drain, including partially applied leader batches,
- hole detection on the L log and the self-repair it triggers,
- demotion handling (head fast-forward + rejoin repair), campaigns on
  leader suspicion, and leader discovery for deposed nodes.

State (σ, A, permissibility, dependency projection) is read and
mutated exclusively through the :class:`~repro.runtime.applier.ApplyEngine`;
ring mechanics come from :class:`~repro.runtime.transport.RingTransport`;
control messages go through a ``control_send`` callable so the layer
never imports the control plane.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

from ..consensus.mu import MuConfig, MuGroup
from ..core import Coordination
from ..rdma import RdmaNode
from ..sim import Store
from .config import RuntimeConfig, l_ack_region, l_region
from .errors import ImpermissibleError, NotLeaderError, SubmitError
from .probe import RuntimeProbe
from .ringbuffer import (
    RingCorruptionError,
    classify_corruption,
    parse_record,
    record_overhead,
)
from .wire import WireCodec, WireError

__all__ = ["ConflictCoordinator"]


class ConflictCoordinator:
    """The Mu-backed ordering path of one node."""

    def __init__(self, rnode: RdmaNode, coordination: Coordination,
                 processes: list[str], initial_leaders: dict[str, str],
                 config: RuntimeConfig, applier, transport,
                 control_send: Callable, spawn: Callable,
                 is_failed: Callable[[], bool],
                 is_suspected: Callable[[str], bool],
                 suspected: Callable[[], set],
                 probe: Optional[RuntimeProbe] = None,
                 counters: Optional[dict[str, int]] = None,
                 codec: Optional[WireCodec] = None):
        self.rnode = rnode
        self.env = rnode.env
        self.name = rnode.name
        self.coordination = coordination
        self.spec = coordination.spec
        self.processes = sorted(processes)
        self.config = config
        self.applier = applier
        self.transport = transport
        self.control_send = control_send
        self.spawn = spawn
        self.is_failed = is_failed
        self.is_suspected = is_suspected
        self.suspected = suspected
        self.probe = probe or RuntimeProbe()
        self.counters = counters if counters is not None else {}
        self.codec = codec or WireCodec(config.wire_version)
        # Partially applied leader batches, per group (see drain_l).
        self._l_partial: dict[str, deque] = {
            group.gid: deque() for group in coordination.sync_groups()
        }
        #: Empty-head streak counters for hole detection.
        self._l_hole_misses: dict[str, int] = {}
        self._init_consensus(initial_leaders)

    def _init_consensus(self, initial_leaders: dict[str, str]) -> None:
        mu_config = MuConfig(
            ring_slots=self.config.ring_slots,
            slot_size=self.config.slot_size,
            integrity=self.config.ring_integrity,
            vote_timeout_us=self.config.vote_timeout_us,
            op_retry_limit=self.config.op_retry_limit,
            op_retry_us=self.config.op_retry_us,
            op_retry_cap_us=self.config.op_retry_cap_us,
        )
        self.mu_groups: dict[str, MuGroup] = {}
        self.conf_queues: dict[str, Store] = {}
        for group in self.coordination.sync_groups():
            gid = group.gid
            self.mu_groups[gid] = MuGroup(
                self.rnode,
                gid,
                self.processes,
                initial_leaders[gid],
                l_region(gid),
                mu_config,
                control_send=self.control_send,
                local_head=lambda gid=gid: (
                    self.transport.l_readers[gid].head
                ),
                ack_of=(
                    (
                        lambda peer, gid=gid: self.rnode.regions[
                            l_ack_region(gid, peer)
                        ].read_u64(0)
                    )
                    if self.config.ack_every
                    else None
                ),
                on_demoted=lambda gid=gid: self.on_demoted(gid),
                # Phi mode only: let the leader skip posting decisions
                # toward suspected (fail-slow) followers — in fixed
                # mode Mu keeps its seed-identical behaviour.
                is_suspected=(
                    self.is_suspected
                    if self.config.fd_mode == "phi" else None
                ),
            )
            self.conf_queues[gid] = Store(self.env)
            self.spawn(self._conf_worker(gid), f"conf:{self.name}:{gid}")

    # -- leader views ----------------------------------------------------

    def leader_of(self, gid: str) -> str:
        return self.mu_groups[gid].leader

    def set_leader_view(self, gid: str, leader: str) -> None:
        """Adopt a peer's view of who leads (forwarding redirects)."""
        self.mu_groups[gid].leader = leader

    def current_leader(self, method: str) -> str:
        group = self.coordination.sync_group(method)
        if group is None:
            raise ValueError(f"{method} is conflict-free")
        return self.mu_groups[group.gid].leader

    def mu_for(self, gid: str) -> Optional[MuGroup]:
        return self.mu_groups.get(gid)

    # -- case 4: conflicting calls ---------------------------------------

    def submit_conf(self, method: str, arg: Any):
        """Generator serving one conflicting call at the leader."""
        group = self.coordination.sync_group(method)
        mu = self.mu_groups[group.gid]
        if mu.leader != self.name:
            self.probe.rejected("not_leader")
            raise NotLeaderError(method, mu.leader)
        done = self.env.event()
        self.conf_queues[group.gid].put((method, arg, done))
        result = yield done
        if isinstance(result, Exception):
            raise result
        return result

    def _conf_worker(self, gid: str):
        """Serializes conflicting calls of one group at the leader."""
        queue = self.conf_queues[gid]
        mu = self.mu_groups[gid]
        cfg = self.config
        applier = self.applier
        while True:
            item = yield queue.get()
            method, arg, done, call, retries = (
                item if len(item) == 5 else (*item, None, 0)
            )
            if self.is_failed():
                done.succeed(SubmitError(f"node {self.name} has failed"))
                continue
            if mu.leader != self.name:
                done.succeed(NotLeaderError(method, mu.leader))
                continue
            if call is None:
                yield from self.rnode.cpu.use(cfg.local_cpu_us)
                call = applier.make_call(method, arg)
            post_sigma = self.spec.apply_call(call, applier.sigma)
            if not applier.invariant_with_summaries(post_sigma):
                # Not (yet) permissible: its dependencies may still be
                # in flight toward this leader (Fig. 11b/13b).  Other
                # calls of the group must not head-block behind it —
                # the leader is free to order any enabled call first —
                # so requeue it and move on.
                if retries >= cfg.conf_retry_limit:
                    self.probe.rejected("impermissible")
                    done.succeed(
                        ImpermissibleError(f"{call} violates the invariant")
                    )
                else:
                    self.probe.conflict_retry(gid)
                    yield self.env.timeout(cfg.conf_retry_us)
                    queue.put((method, arg, done, call, retries + 1))
                continue
            # Accepted speculatively: no local state changes until the
            # decision commits (a deposed leader's failed replication
            # must leave no trace; see docs/protocols.md).
            overlay = {(self.name, method): 1}
            dep = applier.dep_projection(method)
            try:
                packet = self.codec.encode_call_batch([(call, dep)])
            except Exception as exc:
                done.succeed(SubmitError(f"cannot encode {call}: {exc}"))
                continue
            max_payload = cfg.slot_size - record_overhead(
                cfg.ring_integrity
            )
            if len(packet) > max_payload:
                done.succeed(
                    SubmitError(
                        f"record of {len(packet)} bytes exceeds ring slots"
                    )
                )
                continue
            entries = [(call, dep)]
            dones = [(done, call)]
            spec_sigma = post_sigma
            # Piggyback more queued calls onto the same decision (one
            # remote write carries the whole batch when conf_batch > 1).
            while len(entries) < cfg.conf_batch:
                available, extra = queue.try_get()
                if not available:
                    break
                accepted = yield from self._try_accept_conf(
                    queue, extra, entries, spec_sigma, overlay, gid
                )
                if accepted in ("requeued", "full"):
                    # Do not spin pulling the same call back out of the
                    # queue within one batch round.
                    break
                if accepted is not None:
                    entries.append(accepted[0])
                    dones.append(accepted[1])
                    packet = accepted[2]
                    spec_sigma = accepted[3]
            # Commit point: log the issue events at post time so every
            # follower application orders after them in the event log.
            logged = [
                applier.log_event("CONF", batched_call)
                for batched_call, _dep in entries
            ]
            for batched_call, _dep in entries:
                self.probe.span_begin(
                    "decide", batched_call.method, batched_call.origin,
                    batched_call.rid,
                )
                self.probe.trace_transfer(
                    f"L:{gid}", batched_call.method, batched_call.origin,
                    batched_call.rid, len(packet),
                )
            ok = yield from mu.replicate(packet)
            for batched_call, _dep in entries:
                self.probe.span_end(
                    "decide", batched_call.method, batched_call.origin,
                    batched_call.rid,
                )
            if ok:
                # Conflict-free calls the poller applied meanwhile all
                # S-commute with this batch, so re-applying the batch on
                # the evolved state is exactly the decided execution.
                for batched_call, _dep in entries:
                    applier.sigma = self.spec.apply_call(
                        batched_call, applier.sigma
                    )
                    applier.bump_applied(self.name, batched_call.method)
                    applier.seen.add(batched_call.key())
                    # The trace records CONF at *commit* time: a deposed
                    # leader's failed batch never reaches the trace, so
                    # the offline checker replays only decided calls.
                    self.probe.trace_apply(
                        "CONF", batched_call.method, batched_call.origin,
                        batched_call.rid, batched_call.arg,
                    )
                self.probe.conflict_batch(gid, len(entries))
            else:
                for event in logged:
                    self.applier.event_log.remove(event)
                if not mu.is_leader and mu.leader == self.name:
                    # Deposed without having voted (e.g. cut off by a
                    # partition): learn who leads now so redirects point
                    # somewhere useful instead of back at us.
                    yield from self.discover_leader(gid)
            for waiting, batched_call in dones:
                if ok:
                    self.counters["conf_decided"] = (
                        self.counters.get("conf_decided", 0) + 1
                    )
                    waiting.succeed(batched_call)
                else:
                    waiting.succeed(
                        NotLeaderError(batched_call.method, mu.leader)
                        if not mu.is_leader
                        else SubmitError("replication failed")
                    )

    def _try_accept_conf(self, queue: Store, item, entries, spec_sigma,
                         overlay, gid: str):
        """Accept one queued conflicting call into the current batch.

        Speculative: permissibility is checked on ``spec_sigma`` (the
        batch's evolving state) and dependency counts on ``overlay``,
        with no node-state mutation — the worker commits the whole batch
        only after replication succeeds.

        Returns ``((call, dep), (done, call), packet, post_sigma)`` on
        success, ``"requeued"`` when the call must wait (put back),
        ``"full"`` when it does not fit this batch's record, or None
        when it was rejected with an error.
        """
        cfg = self.config
        applier = self.applier
        method, arg, done, call, retries = (
            item if len(item) == 5 else (*item, None, 0)
        )
        if call is None:
            yield from self.rnode.cpu.use(cfg.local_cpu_us)
            call = applier.make_call(method, arg)
        post_sigma = self.spec.apply_call(call, spec_sigma)
        if not applier.invariant_with_summaries(post_sigma):
            if retries >= cfg.conf_retry_limit:
                self.probe.rejected("impermissible")
                done.succeed(
                    ImpermissibleError(f"{call} violates the invariant")
                )
                return None
            self.probe.conflict_retry(gid)
            queue.put((method, arg, done, call, retries + 1))
            return "requeued"
        dep = applier.dep_projection(method, overlay)
        try:
            packet = self.codec.encode_call_batch(entries + [(call, dep)])
        except Exception as exc:
            done.succeed(SubmitError(f"cannot encode {call}: {exc}"))
            return None
        if len(packet) > cfg.slot_size - record_overhead(
            cfg.ring_integrity
        ):
            # Record full: leave the call for the next decision.
            queue.put((method, arg, done, call, retries))
            return "full"
        overlay[(self.name, method)] = overlay.get((self.name, method), 0) + 1
        return (call, dep), (done, call), packet, post_sigma

    # -- L-ring drain ----------------------------------------------------

    def drain_l(self, gid: str):
        """Apply conflicting records, which may be leader-side batches.

        A consumed ring record expands into the partial queue; entries
        are applied strictly in order, blocking at the first whose
        dependencies are unsatisfied — exactly the per-call semantics,
        with the batch only changing the wire framing.
        """
        reader = self.transport.l_readers[gid]
        applier = self.applier
        progressed = False
        drained = 0
        partial = self._l_partial[gid]
        while True:
            if not partial:
                try:
                    payload = reader.peek()
                except RingCorruptionError as corrupt:
                    # A checksummed log record failed CRC: quarantine
                    # and repair it from peers' log copies in place of
                    # this sweep — the head record blocks the buffer
                    # either way.
                    yield from self._repair_corrupt_l(
                        gid, reader, corrupt.index
                    )
                    break
                if payload is None:
                    self._maybe_detect_hole(gid, reader)
                    break
                try:
                    partial.extend(self.codec.decode_call_batch(payload))
                except WireError:
                    # Only reachable with ring integrity off: garbage
                    # that passed the canary check.  Skip the record
                    # rather than crash the drain; the offline checker
                    # flags the resulting divergence.
                    self.probe.wire_reject(f"L:{gid}")
                reader.advance()
                continue
            call, dep = partial[0]
            if applier.has_seen(call.key()):
                partial.popleft()
                continue
            if not applier.dep_ok(dep):
                break
            self.probe.trace_transfer(
                f"L<-{gid}", call.method, call.origin, call.rid, 0
            )
            yield from applier.apply(call, "CONF_APP")
            partial.popleft()
            drained += 1
            progressed = True
        if drained:
            self.probe.records_drained(f"L<-{gid}", drained)
        return progressed

    def _repair_corrupt_l(self, gid: str, reader, index: int):
        """Detect-and-repair for one CRC-rejected L-log record.

        Mirrors the transport's F-ring path: quarantine the slot (it
        then reads as a hole), run Mu's self-repair to refill it from
        reachable peers' log copies, and classify the pre-repair bytes
        against the restored record for the ``torn_detected`` counter.
        A slot that stays unrepaired (no reachable source yet) is
        retried by the hole detector on later sweeps.
        """
        cfg = self.config
        ring = f"L:{gid}"
        offset = (index % cfg.ring_slots) * cfg.slot_size
        before = bytes(reader.region.read(offset, cfg.slot_size))
        self.probe.crc_reject(ring)
        reader.quarantine(index)
        mu = self.mu_groups[gid]
        yield from mu.self_repair(set(self.suspected()))
        after = reader.region.read(offset, cfg.slot_size)
        record = parse_record(after, index, cfg.ring_slots)
        if record is None:
            return False
        kind = classify_corruption(before, bytes(record))
        if kind == "torn":
            self.probe.torn_detect(ring)
        self.probe.slot_repair(ring)
        self.probe.trace_repair(ring, index, kind)
        return True

    def _maybe_detect_hole(self, gid: str, reader) -> None:
        """A valid record AHEAD of an empty head means our log copy has
        a hole (e.g. writes lost while we were partitioned): repair it
        from peers.  Probed exponentially and rate-limited — the common
        empty-head case costs a few slot reads every 256 misses."""
        misses = self._l_hole_misses.get(gid, 0) + 1
        self._l_hole_misses[gid] = misses
        if misses % 256:
            return
        slots = self.config.ring_slots
        slot_size = self.config.slot_size
        offset_index = 1
        while offset_index <= 1024:
            index = reader.head + offset_index
            offset = (index % slots) * slot_size
            slot = reader.region.read(offset, slot_size)
            if parse_record(slot, index, slots) is not None:
                self.probe.hole_repair(gid)
                self.spawn(
                    self.rejoin_repair(gid), f"hole-repair:{self.name}"
                )
                return
            offset_index *= 2
        # Frontier analogue of the F-ring wedge fix (see
        # Transport.maybe_repair_f): the *head* record itself can be
        # corrupted into bytes that parse as "not landed" (a flipped
        # length field), and the final record of a burst never gets a
        # valid record ahead of it to trip the probe above.  A nonzero
        # head slot that still reads as a hole is suspicious enough to
        # schedule a self-repair pass; a previous-lap leftover costs
        # one redundant (idempotent) repair scan per 256 misses.
        head_offset = (reader.head % slots) * slot_size
        if any(reader.region.read(head_offset, slot_size)):
            self.spawn(
                self.rejoin_repair(gid), f"hole-repair:{self.name}"
            )

    # -- leader change ---------------------------------------------------

    def on_demoted(self, gid: str) -> None:
        """This node just stopped leading ``gid``: rejoin as follower.

        As leader it applied its decided records directly (its own L
        ring was never written), so the ring reader fast-forwards to
        ``decided`` and a self-repair scan copies any records it missed
        from healthy peers' log copies.
        """
        mu = self.mu_groups[gid]
        reader = self.transport.l_readers[gid]
        reader.head = max(reader.head, mu.decided)
        self.probe.demoted(gid)
        self.spawn(self.rejoin_repair(gid), f"rejoin:{self.name}:{gid}")

    def rejoin_repair(self, gid: str):
        mu = self.mu_groups[gid]
        yield from mu.self_repair(set(self.suspected()))

    def discover_leader(self, gid: str):
        """Ask reachable peers who currently leads ``gid``.

        Armed as *authoritative*: a rejoining node's failed campaigns
        may have inflated its term past the cluster's real one, and the
        usual stale-reply guard would then reject the truth — leaving
        the old leader's write permission in place forever (the L-ring
        partitioned-minority bug).  See
        :meth:`~repro.consensus.mu.MuGroup.expect_authoritative_leader`.
        """
        self.mu_groups[gid].expect_authoritative_leader()
        for peer in self.processes:
            if peer == self.name or self.is_suspected(peer):
                continue
            yield from self.control_send(peer, ("who_leads", gid))
        # Replies arrive through the control listener, which updates
        # the Mu group's view; give them one control round trip.
        yield self.env.timeout(3.0)

    # -- membership ------------------------------------------------------

    def add_member(self, name: str) -> None:
        """Elastic scale-out: grow every group's membership."""
        if name in self.processes:
            return
        self.processes = sorted([*self.processes, name])
        for mu in self.mu_groups.values():
            mu.add_member(name)

    def remove_member(self, name: str) -> None:
        """Elastic scale-in: shrink every group's membership."""
        if name not in self.processes:
            return
        self.processes.remove(name)
        for mu in self.mu_groups.values():
            mu.remove_member(name)

    def handle_suspect(self, peer: str) -> None:
        """Campaign for any group the suspected peer was leading.

        Every live candidate arms a staggered campaign loop, ranked by
        name order: rank 0 campaigns immediately (the healthy-path
        behaviour), rank k waits k extra stagger units and only runs if
        the group is *still* led by the suspect — so a crashed first
        candidate no longer strands the group leaderless.
        """
        for gid, mu in self.mu_groups.items():
            if mu.leader == peer:
                candidates = [
                    p
                    for p in self.processes
                    if p != peer and not self.is_suspected(p)
                ]
                if self.name in candidates:
                    rank = candidates.index(self.name)
                    self.env.process(
                        self._campaign_loop(gid, peer, rank),
                        name=f"campaign:{self.name}:{gid}",
                    )

    def _campaign_loop(self, gid: str, suspect: str, rank: int):
        """Staggered, retrying election driver for one suspicion event."""
        mu = self.mu_groups[gid]
        cfg = self.config
        if rank:
            yield self.env.timeout(
                rank * (cfg.vote_timeout_us + cfg.campaign_stagger_us)
            )
        for _attempt in range(cfg.campaign_retry_limit):
            if (
                mu.leader != suspect
                or not self.is_suspected(suspect)
                or self.is_failed()
                or not self.rnode.alive
            ):
                return  # resolved meanwhile (elected / recovered / we died)
            won = yield from mu.campaign(set(self.suspected()))
            if won or mu.leader != suspect:
                return
            yield self.env.timeout(cfg.campaign_retry_us)

    def campaign(self, gid: str):
        mu = self.mu_groups[gid]
        won = yield from mu.campaign(set(self.suspected()))
        if won:
            # Old leader's queued clients at this node now proceed here.
            pass
