"""Offline trace analyzer: replay a flight-recorder trace and check
the paper's Figure-5/Figure-7 obligations against what actually ran.

:class:`TraceChecker` consumes the rule events of a recorded trace
(:mod:`repro.runtime.trace`) in their global order and re-derives every
node's state, asserting three obligations:

1. **Integrity (Lemma 1)** — every applied update was *permissible at
   its apply state*: for each rule event, folding the call into the
   applying node's replayed state must preserve the invariant (for
   REDUCE the summary is visible at every node, so the check runs at
   all of them).  It also rejects double-application of one call at one
   node (the runtime's dedup obligation).
2. **Total order per synchronization group** — the conflicting calls of
   one sync group must be applied in a single total order on all nodes:
   the per-node apply sequences, restricted to any pair's common calls,
   may not contain an inversion.
3. **Convergence (Lemma 2)** — at quiescence every node has applied the
   same set of calls and all replayed states are equal under
   ``spec.state_eq``.

Violations carry the *causal event chain* — every recorded event
(spans, ring transfers, rule instants) mentioning the offending call —
so a report points from the failed obligation back to where the call
was issued, which rings it crossed, and where it was applied.

A trace truncated by the recorder's bounded ring buffer cannot attest
convergence; the checker reports that as a violation instead of
silently passing.

Chaos runs additionally record ``fault`` events (injected by
:mod:`repro.sim.faults`) and ``repair`` events (emitted when a node
detects a CRC-failed ring record and heals it from an authoritative
copy).  The checker tallies both so a report correlates *injected* ⇒
*detected* ⇒ *repaired*: a corruption campaign that converged with
zero repairs either never landed or was silently absorbed, and either
way the tally makes that visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..core import Call, Coordination
from .trace import LoadedTrace, TraceEvent, load_jsonl

__all__ = [
    "CheckReport",
    "ShardedCheckReport",
    "ShardedTraceChecker",
    "TraceChecker",
    "Violation",
]

#: Rules that mutate σ at exactly the event's node.
_LOCAL_APPLY_RULES = ("FREE", "CONF", "FREE_APP", "CONF_APP")


@dataclass
class Violation:
    """One failed obligation, with the offending call's event chain."""

    kind: str  # integrity | duplicate | order | convergence |
    #            truncated | vocabulary
    message: str
    chain: list[TraceEvent] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"[{self.kind}] {self.message}"]
        for event in self.chain:
            lines.append(
                f"    t={event.t:<12.3f} {event.node:>4s} "
                f"{event.kind:>4s} {event.name:<10s} "
                f"{event.method}@{event.call_id()}"
            )
        return "\n".join(lines)


@dataclass
class CheckReport:
    """The outcome of one offline trace check."""

    nodes: list[str]
    calls_checked: int = 0
    applies_checked: int = 0
    violations: list[Violation] = field(default_factory=list)
    #: Injected-fault tally by fault kind (``corrupt``, ``torn``,
    #: ``crash``, ...), from the trace's ``fault`` events.
    faults: dict[str, int] = field(default_factory=dict)
    #: Repair tally by corruption classification (``bitflip``,
    #: ``torn``, ``scrub``), from the trace's ``repair`` events.
    repairs: dict[str, int] = field(default_factory=dict)
    #: Which checker produced this report ("trace check" offline,
    #: "stream check" for the in-run streaming checker).
    label: str = "trace check"

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        head = (
            f"{self.label}: {len(self.nodes)} nodes, "
            f"{self.calls_checked} calls, "
            f"{self.applies_checked} applies -> "
            f"{'OK' if self.ok else f'{len(self.violations)} violation(s)'}"
        )
        if self.faults or self.repairs:
            head += (
                f" | faults {self._tally(self.faults)}"
                f" repaired {self._tally(self.repairs)}"
            )
        if self.ok:
            return head
        return "\n".join([head] + [v.render() for v in self.violations])

    @staticmethod
    def _tally(counts: dict[str, int]) -> str:
        if not counts:
            return "none"
        return ",".join(
            f"{kind}={count}" for kind, count in sorted(counts.items())
        )


class TraceChecker:
    """Replays recorded rule events against the object specification."""

    def __init__(self, coordination: Coordination,
                 processes: Optional[Iterable[str]] = None,
                 max_violations: int = 25):
        self.coordination = coordination
        self.spec = coordination.spec
        self.processes = sorted(processes) if processes else None
        self.max_violations = max_violations

    # -- entry points ----------------------------------------------------

    def check_jsonl(self, path: str) -> CheckReport:
        """Check a trace previously exported with ``export_jsonl``."""
        trace: LoadedTrace = load_jsonl(path)
        return self.check(
            trace.events, dropped=trace.dropped,
            processes=self.processes or trace.nodes,
            gaps=trace.gaps,
        )

    def check(self, events: Iterable[TraceEvent], dropped: int = 0,
              processes: Optional[Iterable[str]] = None,
              gaps: Iterable[tuple] = ()) -> CheckReport:
        events = sorted(events, key=lambda event: event.seq)
        nodes = sorted(processes or self.processes or {
            event.node for event in events
        })
        # Elastic membership: the declared node list names the FINAL
        # roster (joiners included, departed excluded).  Reconstruct the
        # founding roster from the member events, then evolve it during
        # the replay — a joiner's state begins at its ``member_join``
        # event, a departed node stops being held to convergence at its
        # ``member_leave``.
        joins = {
            event.origin for event in events
            if event.kind == "member" and event.name == "member_join"
        }
        leaves = {
            event.origin for event in events
            if event.kind == "member" and event.name == "member_leave"
        }
        initial = sorted((set(nodes) | leaves) - joins)
        report = CheckReport(nodes=nodes)
        if not initial:
            report.violations.append(
                Violation("vocabulary", "empty trace: no nodes recorded")
            )
            return report

        chains: dict[tuple[str, int], list[TraceEvent]] = {}
        for event in events:
            chains.setdefault((event.origin, event.rid), []).append(event)

        def chain(origin: str, rid: int) -> list[TraceEvent]:
            return chains.get((origin, rid), [])

        def report_violation(kind: str, message: str,
                             chain_events: list[TraceEvent]) -> None:
            if len(report.violations) < self.max_violations:
                report.violations.append(
                    Violation(kind, message, chain_events)
                )

        sigma: dict[str, Any] = {
            node: self.spec.initial_state() for node in initial
        }
        applied: dict[str, set[tuple[str, int]]] = {
            node: set() for node in initial
        }
        #: Nodes currently part of the cluster (evolves at member
        #: events); convergence is only owed by the final roster.
        present: set[str] = set(initial)
        departed: set[str] = set()
        #: Every REDUCE replayed so far, in order — a joiner's state
        #: transfer pulls the summary slots, so its replayed state must
        #: start from these (it will never see their rule events).
        reduced: list[tuple[tuple[str, int], Call]] = []
        #: Per-(gid, node) apply order of conflicting calls.
        group_order: dict[tuple[str, str], list[tuple[str, int]]] = {}
        seen_calls: set[tuple[str, int]] = set()

        for event in events:
            if event.kind == "member":
                subject = event.origin
                if event.name == "member_join":
                    if subject not in sigma:
                        state = self.spec.initial_state()
                        seeded: set[tuple[str, int]] = set()
                        for red_key, red_call in reduced:
                            state = self.spec.apply_call(red_call, state)
                            seeded.add(red_key)
                        sigma[subject] = state
                        applied[subject] = seeded
                    present.add(subject)
                    departed.discard(subject)
                elif event.name == "member_leave":
                    present.discard(subject)
                    departed.add(subject)
                continue  # state_xfer and friends are informational
            if event.kind == "fault":
                report.faults[event.name] = (
                    report.faults.get(event.name, 0) + 1
                )
                continue
            if event.kind == "repair":
                report.repairs[event.name] = (
                    report.repairs.get(event.name, 0) + 1
                )
                continue
            if event.kind != "rule" or event.name == "QUERY":
                continue
            rule = event.name
            key = (event.origin, event.rid)
            call = Call(event.method, event.arg, event.origin, event.rid)
            if event.node not in sigma:
                report_violation(
                    "vocabulary",
                    f"event at unknown node {event.node!r}",
                    chain(*key),
                )
                continue
            if rule == "REDUCE":
                seen_calls.add(key)
                report.applies_checked += 1
                if key in applied[event.node]:
                    report_violation(
                        "duplicate",
                        f"{call} reduced twice at {event.node}",
                        chain(*key),
                    )
                    continue
                # A summary write is visible at every node (refinement:
                # REDUCE = CALL at origin + immediate PROP everywhere).
                # Departed nodes no longer see summary writes.
                reduced.append((key, call))
                for node in sorted(present):
                    next_state = self.spec.apply_call(call, sigma[node])
                    if not self.spec.invariant(next_state):
                        report_violation(
                            "integrity",
                            f"{call} (REDUCE at {event.node}) breaks the "
                            f"invariant at {node}",
                            chain(*key),
                        )
                    sigma[node] = next_state
                    applied[node].add(key)
            elif rule in _LOCAL_APPLY_RULES:
                seen_calls.add(key)
                report.applies_checked += 1
                node = event.node
                if key in applied[node]:
                    report_violation(
                        "duplicate",
                        f"{call} applied twice at {node} (rule {rule})",
                        chain(*key),
                    )
                    continue
                next_state = self.spec.apply_call(call, sigma[node])
                if not self.spec.invariant(next_state):
                    report_violation(
                        "integrity",
                        f"{call} not permissible at its apply state "
                        f"({rule} at {node})",
                        chain(*key),
                    )
                sigma[node] = next_state
                applied[node].add(key)
                if rule in ("CONF", "CONF_APP"):
                    group = self.coordination.sync_group(event.method)
                    if group is None:
                        report_violation(
                            "vocabulary",
                            f"{rule} event for conflict-free method "
                            f"{event.method!r} at {node}",
                            chain(*key),
                        )
                    else:
                        group_order.setdefault(
                            (group.gid, node), []
                        ).append(key)
            else:
                report_violation(
                    "vocabulary",
                    f"unknown rule {rule!r} at {event.node}",
                    chain(*key),
                )
        report.calls_checked = len(seen_calls)
        report.nodes = sorted(present)

        # The total-order obligation holds for every node that was ever
        # a member — a departed node's (partial) order must still agree.
        self._check_group_orders(report, group_order, chain, sorted(sigma))
        # Convergence is owed only by the final roster: a departed node
        # legitimately froze mid-history.
        self._check_convergence(
            report, sigma, applied, chain, sorted(present), dropped, gaps
        )
        return report

    # -- obligation 2: one total order per sync group --------------------

    def _check_group_orders(self, report, group_order, chain, nodes):
        gids = sorted({gid for gid, _node in group_order})
        for gid in gids:
            sequences = [
                (node, group_order.get((gid, node), []))
                for node in nodes
            ]
            for i, (node_a, seq_a) in enumerate(sequences):
                positions = {key: idx for idx, key in enumerate(seq_a)}
                for node_b, seq_b in sequences[i + 1:]:
                    common = [key for key in seq_b if key in positions]
                    last = -1
                    for key in common:
                        if positions[key] < last:
                            prev = next(
                                k for k, idx in positions.items()
                                if idx == last
                            )
                            report.violations.append(Violation(
                                "order",
                                f"sync group {gid}: {node_a} applied "
                                f"{key[0]}#{key[1]} before "
                                f"{prev[0]}#{prev[1]} but {node_b} "
                                f"applied them in the opposite order",
                                chain(*key) + chain(*prev),
                            ))
                            break
                        last = positions[key]

    # -- obligation 3: convergence at quiescence -------------------------

    def _check_convergence(self, report, sigma, applied, chain, nodes,
                           dropped, gaps=()):
        if dropped:
            detail = f"trace dropped {dropped} event(s)"
            gap_list = [tuple(gap) for gap in gaps]
            if gap_list:
                shown = ", ".join(
                    f"gap at seq {gap[0]}..{gap[1]}"
                    for gap in gap_list[:5]
                )
                if len(gap_list) > 5:
                    shown += f", … ({len(gap_list)} gaps)"
                detail += f" — {shown}"
            report.violations.append(Violation(
                "truncated",
                detail + ": cannot attest convergence (raise the "
                "recorder capacity)",
            ))
            return
        if not nodes:
            return  # everyone scaled in: nobody owes convergence
        union: set[tuple[str, int]] = set()
        for node in nodes:
            union |= applied[node]
        for node in nodes:
            missing = union - applied[node]
            for key in sorted(missing)[:3]:
                report.violations.append(Violation(
                    "convergence",
                    f"{node} never applied {key[0]}#{key[1]} "
                    f"({len(missing)} call(s) missing at {node})",
                    chain(*key),
                ))
        if any(applied[node] != union for node in nodes):
            return  # states legitimately differ when calls are missing
        base = nodes[0]
        for node in nodes[1:]:
            if not self.spec.state_eq(sigma[base], sigma[node]):
                report.violations.append(Violation(
                    "convergence",
                    f"equal histories but diverged states: "
                    f"{base} != {node} "
                    f"({sigma[base]!r} vs {sigma[node]!r})",
                ))


# -- sharded topologies -----------------------------------------------------


@dataclass
class ShardedCheckReport:
    """Per-shard reports plus the cross-shard atomicity verdict."""

    shard_reports: dict[int, CheckReport] = field(default_factory=dict)
    #: Cross-shard obligations only (``atomicity`` / ``atomicity-order``
    #: / ``truncated``); per-shard violations live in their reports.
    violations: list[Violation] = field(default_factory=list)
    txns_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and all(
            report.ok for report in self.shard_reports.values()
        )

    def all_violations(self) -> list[Violation]:
        merged = list(self.violations)
        for shard in sorted(self.shard_reports):
            merged.extend(self.shard_reports[shard].violations)
        return merged

    def summary(self) -> str:
        lines = []
        for shard in sorted(self.shard_reports):
            lines.append(f"s{shard}: {self.shard_reports[shard].summary()}")
        verdict = (
            "OK" if not self.violations
            else f"{len(self.violations)} violation(s)"
        )
        lines.append(
            f"cross-shard atomicity: {self.txns_checked} txn(s) -> {verdict}"
        )
        lines.extend(v.render() for v in self.violations)
        return "\n".join(lines)


class ShardedTraceChecker:
    """Checks a sharded run: every shard's stream must satisfy the
    single-cluster obligations (Lemma 1 integrity, per-group total
    order, Lemma 2 convergence), and the transaction stream must
    satisfy cross-shard atomicity:

    1. **Commit completeness** — every call identity a COMMIT receipt
       names was actually applied on its shard.
    2. **Abort emptiness (all-or-nothing)** — no call identity an ABORT
       receipt names was applied anywhere: an aborted transaction left
       no partial effects.  This is the obligation the conflicting-txn
       lock path is load-bearing for — with the lock path disabled, a
       rejected constituent no longer aborts the set before its
       siblings land, and this check fails.
    3. **Cross-shard order** — two committed *locked* transactions
       sharing two or more shards must take effect in the same order on
       every shared shard (first-apply order by global sequence number;
       an inversion means the per-shard lock/commit protocol was
       bypassed).

    Commuting transactions are exempt from (3) by construction: their
    calls commute with all concurrent updates, so any apply
    interleaving is equivalent.
    """

    def __init__(self, coordination: Coordination, n_shards: int,
                 processes: Optional[Iterable[str]] = None,
                 max_violations: int = 25):
        self.coordination = coordination
        self.n_shards = n_shards
        self.processes = sorted(processes) if processes else None
        self.max_violations = max_violations

    def check_recorder(self, recorder) -> ShardedCheckReport:
        """Check a :class:`~repro.runtime.trace.ShardedRecorder`."""
        return self.check(
            recorder.shard_events(),
            recorder.txn_events(),
            dropped=recorder.dropped(),
            gaps=recorder.drop_gaps(),
        )

    def check(self, shard_events: dict[int, list[TraceEvent]],
              txn_events: Iterable[TraceEvent],
              dropped: int = 0,
              gaps: Iterable[tuple] = ()) -> ShardedCheckReport:
        report = ShardedCheckReport()
        for shard in range(self.n_shards):
            checker = TraceChecker(
                self.coordination,
                processes=self.processes,
                max_violations=self.max_violations,
            )
            report.shard_reports[shard] = checker.check(
                shard_events.get(shard, [])
            )
        if dropped:
            detail = f"trace dropped {dropped} event(s)"
            gap_list = [tuple(gap) for gap in gaps]
            if gap_list:
                detail += " — " + ", ".join(
                    f"gap at seq {gap[0]}..{gap[1]}"
                    for gap in gap_list[:5]
                )
            report.violations.append(Violation(
                "truncated",
                detail + ": cannot attest cross-shard atomicity "
                "(raise the recorder capacity)",
            ))
        self._check_atomicity(report, shard_events, list(txn_events))
        return report

    # -- the cross-shard obligations -------------------------------------

    def _check_atomicity(self, report, shard_events, txn_events):
        def violation(kind: str, message: str,
                      chain: Optional[list] = None) -> None:
            if len(report.violations) < self.max_violations:
                report.violations.append(
                    Violation(kind, message, chain or [])
                )

        # First-apply position of every call identity, per shard, in
        # the recorder's global sequence order.
        applied_at: dict[int, dict[tuple[str, int], int]] = {}
        for shard, events in shard_events.items():
            first = applied_at.setdefault(shard, {})
            for event in events:
                if event.kind == "rule" and event.name != "QUERY":
                    first.setdefault((event.origin, event.rid), event.seq)

        outcomes = [
            event for event in txn_events
            if event.kind == "txn" and event.name in ("COMMIT", "ABORT")
        ]
        report.txns_checked = len(outcomes)
        for event in outcomes:
            issued = tuple(event.arg or ())
            for identity in issued:
                shard, method, origin, rid = identity
                landed = (origin, rid) in applied_at.get(shard, {})
                if event.name == "COMMIT" and not landed:
                    violation(
                        "atomicity",
                        f"txn #{event.rid} ({event.method}) committed "
                        f"but {method}@{origin}#{rid} never applied on "
                        f"shard s{shard}",
                        [event],
                    )
                elif event.name == "ABORT" and landed:
                    violation(
                        "atomicity",
                        f"txn #{event.rid} ({event.method}) aborted but "
                        f"{method}@{origin}#{rid} was applied on shard "
                        f"s{shard}: partial effects survived the abort",
                        [event],
                    )

        # Obligation 3: pairwise order agreement for committed locked
        # transactions sharing >= 2 shards.
        locked = [
            event for event in outcomes
            if event.name == "COMMIT" and event.method == "locked"
        ]
        positions: list[tuple[TraceEvent, dict[int, int]]] = []
        for event in locked:
            per_shard: dict[int, int] = {}
            for shard, _method, origin, rid in tuple(event.arg or ()):
                seq = applied_at.get(shard, {}).get((origin, rid))
                if seq is not None:
                    per_shard[shard] = min(
                        per_shard.get(shard, seq), seq
                    )
            positions.append((event, per_shard))
        for i, (event_a, pos_a) in enumerate(positions):
            for event_b, pos_b in positions[i + 1:]:
                shared = sorted(set(pos_a) & set(pos_b))
                if len(shared) < 2:
                    continue
                orders = {
                    shard: pos_a[shard] < pos_b[shard] for shard in shared
                }
                if len(set(orders.values())) > 1:
                    violation(
                        "atomicity-order",
                        f"locked txns #{event_a.rid} and #{event_b.rid} "
                        f"took effect in opposite orders on shared "
                        f"shards {', '.join(f's{s}' for s in shared)}",
                        [event_a, event_b],
                    )
