"""Streaming trace checker: verify a run *while* it executes.

The offline :class:`~repro.runtime.checker.TraceChecker` replays a
whole recorded trace in memory, so its cost and footprint grow with
trace length — it cannot attest a long-running, million-op serving
run.  :class:`StreamingChecker` reformulates the same three
obligations (Lemma-1 integrity, one total order per synchronization
group, Lemma-2 convergence) as an *incremental, windowed* analysis in
the style of replication-aware linearizability (Enea et al.): the
compositional per-object criterion makes it sound to verify each sync
group's obligations over a bounded window of in-flight calls,
checkpoint the verified prefix, and discard it.

Feed it events online — tapped directly off the per-node
:class:`~repro.runtime.trace.TracingProbe`\\ s via
:meth:`~repro.runtime.trace.TraceRecorder.stream_to`, or tailing a
JSONL stream — in global sequence order.  Memory is bounded by the
*window* (calls issued but not yet applied everywhere), not the trace:

- a call **retires** once every node has applied it (REDUCE retires
  immediately — a summary write is visible everywhere at once); its
  event chain, apply bookkeeping, and sync-group entries are dropped
  and only a compact per-origin interval set of retired request ids
  remains (for exact duplicate detection, O(gaps) not O(calls));
- sync-group total order is checked pairwise *as applies arrive*: per
  node pair, the common in-window calls are kept sorted by one node's
  apply position, and a new common call is an inversion exactly when
  it breaks monotonicity against a neighbour.  Group calls retire in
  common-prefix order, so an inversion always surfaces while both
  calls are still in the window;
- convergence is asserted at :meth:`finish` over the residual window —
  every retired call was applied everywhere by construction.

Sequence-number continuity doubles as gap detection: a jump in ``seq``
means events were lost upstream (a :class:`TracingProbe` ring drop),
and the checker reports ``gap at seq N..M`` explicitly — and declines
to attest convergence, exactly like the offline checker on a truncated
trace — instead of failing opaquely.

:class:`CheckpointState` snapshots the full checker state (replayed
states, retired intervals, window, group frontiers, violations so far)
as deterministic JSON.  A checker resumed from a checkpoint skips
already-verified events (``seq < next_seq``) and reaches the same
verdict as an uninterrupted run.
"""

from __future__ import annotations

import base64
import bisect
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..core import Call, Coordination
from .checker import CheckReport, Violation
from .trace import TraceEvent, event_from_dict, event_to_dict, iter_jsonl
from .wire import decode_value, encode_value

__all__ = [
    "CheckpointState",
    "StreamingChecker",
]

#: Rules that mutate σ at exactly the event's node.
_LOCAL_APPLY_RULES = ("FREE", "CONF", "FREE_APP", "CONF_APP")

#: Per-call causal-chain cap: violations carry at most this many of the
#: call's most recent events (the offline checker keeps every event of
#: every call — exactly what a streaming checker must not do).
_CHAIN_LIMIT = 48


class _IntervalSet:
    """A set of ints stored as sorted disjoint ``[lo, hi]`` intervals.

    Retired request ids per origin are dense (nodes assign them
    sequentially), so this stays at one or two intervals no matter how
    many calls retire — the structure that makes exact duplicate
    detection O(1) memory per origin.
    """

    __slots__ = ("spans",)

    def __init__(self, spans: Optional[list[list[int]]] = None):
        self.spans: list[list[int]] = spans or []

    def add(self, value: int) -> None:
        spans = self.spans
        index = bisect.bisect_left(spans, [value])
        if index < len(spans) and spans[index][0] <= value <= spans[index][1]:
            return
        if index > 0 and spans[index - 1][0] <= value <= spans[index - 1][1]:
            return
        joins_prev = index > 0 and spans[index - 1][1] == value - 1
        joins_next = index < len(spans) and spans[index][0] == value + 1
        if joins_prev and joins_next:
            spans[index - 1][1] = spans[index][1]
            del spans[index]
        elif joins_prev:
            spans[index - 1][1] = value
        elif joins_next:
            spans[index][0] = value
        else:
            spans.insert(index, [value, value])

    def __contains__(self, value: int) -> bool:
        spans = self.spans
        index = bisect.bisect_right(spans, [value, float("inf")])
        return index > 0 and spans[index - 1][0] <= value <= spans[index - 1][1]

    def __len__(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self.spans)


@dataclass
class _CallState:
    """Bookkeeping for one in-window (not yet fully replicated) call."""

    first_seq: int
    gid: str = ""
    applied: set[str] = field(default_factory=set)
    #: Node -> this call's position in that node's per-group apply order.
    group_pos: dict[str, int] = field(default_factory=dict)


def _key_str(key: tuple[str, int]) -> str:
    return f"{key[0]}#{key[1]}"


def _key_from_str(text: str) -> tuple[str, int]:
    origin, _, rid = text.rpartition("#")
    return (origin, int(rid))


@dataclass
class CheckpointState:
    """A serializable, resumable snapshot of a :class:`StreamingChecker`.

    ``next_seq`` is the first sequence number the resumed checker will
    process; everything below it is part of the verified prefix or the
    serialized window.  :meth:`to_json` is deterministic — identical
    checker states produce identical bytes — so checkpoints can be
    compared, content-addressed, and replayed in tests.
    """

    spec_name: str
    nodes: list[str]
    next_seq: int
    payload: dict[str, Any]
    version: int = 1

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": "checkpoint",
                "version": self.version,
                "spec": self.spec_name,
                "nodes": self.nodes,
                "next_seq": self.next_seq,
                "payload": self.payload,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "CheckpointState":
        record = json.loads(text)
        if record.get("kind") != "checkpoint":
            raise ValueError("not a checkpoint record")
        return cls(
            spec_name=record["spec"],
            nodes=list(record["nodes"]),
            next_seq=record["next_seq"],
            payload=record["payload"],
            version=record.get("version", 1),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(self.to_json())
            fp.write("\n")

    @classmethod
    def load(cls, path: str) -> "CheckpointState":
        with open(path, encoding="utf-8") as fp:
            return cls.from_json(fp.read())


class StreamingChecker:
    """Incremental trace checker with bounded (window-sized) memory.

    >>> checker = StreamingChecker(cluster.coordination,
    ...                            processes=cluster.node_names())
    >>> recorder.stream_to(checker.feed)   # tap the live probes
    ... # drive the cluster ...
    >>> report = checker.finish()          # CheckReport, like offline

    Events must arrive in nondecreasing ``seq`` order (the recorder's
    shared counter guarantees this for a tapped run; JSONL exports are
    written in that order).  Events with ``seq`` below the resume
    frontier are skipped, which makes re-feeding a stream from the
    start after :meth:`resume` idempotent.
    """

    def __init__(self, coordination: Coordination,
                 processes: Iterable[str],
                 max_violations: int = 25,
                 strict_seq: bool = True):
        self.coordination = coordination
        self.spec = coordination.spec
        self.nodes = sorted(processes)
        self.max_violations = max_violations
        #: When True, a jump in sequence numbers is recorded as a gap
        #: (events lost upstream).  Turn off to accept re-sequenced or
        #: filtered streams the way the offline checker does.
        self.strict_seq = strict_seq

        self.sigma: dict[str, Any] = {
            node: self.spec.initial_state() for node in self.nodes
        }
        self._node_set = set(self.nodes)
        #: Elastic membership: nodes that joined / left mid-stream.
        #: A joiner replays the whole transferred history through
        #: ordinary apply events, so applies of already-retired calls at
        #: a joined node are catch-up (tracked exactly in
        #: ``_joiner_caught``), not duplicates.
        self._joined: set[str] = set()
        self._departed: set[str] = set()
        #: joiner -> origin -> retired rids it has replayed (exact
        #: duplicate detection for the catch-up path).
        self._joiner_caught: dict[str, dict[str, _IntervalSet]] = {}
        #: initial state folded with every REDUCE seen so far — the
        #: summary slots a joiner's state transfer pulls, i.e. the seed
        #: for a joiner's replayed state (it never sees old REDUCE
        #: events).
        self._reduce_sigma: Any = self.spec.initial_state()
        #: In-window calls: issued/applied somewhere, not yet everywhere.
        self.inflight: dict[tuple[str, int], _CallState] = {}
        #: Retired request ids per origin (applied at every node).
        self.retired: dict[str, _IntervalSet] = {}
        self.retired_count = 0
        #: Per-(gid, node) monotone apply-position counters.
        self._group_counts: dict[tuple[str, str], int] = {}
        #: Per-gid per-node unretired group applies, in apply order.
        self._group_queues: dict[str, dict[str, list]] = {}
        #: Per-(gid, a, b) common in-window calls as (pos_a, pos_b, key)
        #: sorted by pos_a (a < b lexicographically).
        self._group_pairs: dict[tuple[str, str, str], list] = {}
        #: Bounded per-call causal-event cache backing violation chains.
        self._chains: dict[tuple[str, int], list[TraceEvent]] = {}
        self._retained = 0

        self.violations: list[Violation] = []
        self.faults: dict[str, int] = {}
        self.repairs: dict[str, int] = {}
        #: Gaps inferred from seq discontinuities: list of (first, last).
        self.gaps: list[tuple[int, int]] = []

        self.events_checked = 0
        self.calls_checked = 0
        self.applies_checked = 0
        self.peak_window = 0
        self.peak_retained = 0
        self.last_seq = -1
        self._expect: Optional[int] = None
        self._finished: Optional[CheckReport] = None

    # -- feeding ---------------------------------------------------------

    def feed_many(self, events: Iterable[TraceEvent]) -> None:
        for event in events:
            self.feed(event)

    def feed(self, event: TraceEvent) -> None:
        seq = event.seq
        if self._expect is not None:
            if seq < self._expect:
                return  # already verified (checkpoint resume replay)
            if seq > self._expect and self.strict_seq:
                self.gaps.append((self._expect, seq - 1))
        self._expect = seq + 1
        self.last_seq = seq
        self.events_checked += 1

        key = (event.origin, event.rid)
        self._chain_add(key, event)

        kind = event.kind
        if kind == "fault":
            self.faults[event.name] = self.faults.get(event.name, 0) + 1
            return
        if kind == "repair":
            self.repairs[event.name] = self.repairs.get(event.name, 0) + 1
            return
        if kind == "member":
            self._member(event)
            return
        if kind != "rule" or event.name == "QUERY":
            return

        rule = event.name
        call = Call(event.method, event.arg, event.origin, event.rid)
        if event.node not in self._node_set:
            if event.node in self._departed:
                return  # trailing event from a scaled-in node
            self._violation(
                "vocabulary",
                f"event at unknown node {event.node!r}",
                self._chain(key),
            )
            return

        state = self.inflight.get(key)
        retired = (
            state is None
            and event.origin in self.retired
            and event.rid in self.retired[event.origin]
        )
        if state is None and not retired:
            self.calls_checked += 1

        if rule == "REDUCE":
            self.applies_checked += 1
            if retired or (state is not None and event.node in state.applied):
                self._violation(
                    "duplicate",
                    f"{call} reduced twice at {event.node}",
                    self._chain(key),
                )
                return
            # A summary write is visible at every node at once.
            for node in self.nodes:
                next_state = self.spec.apply_call(call, self.sigma[node])
                if not self.spec.invariant(next_state):
                    self._violation(
                        "integrity",
                        f"{call} (REDUCE at {event.node}) breaks the "
                        f"invariant at {node}",
                        self._chain(key),
                    )
                self.sigma[node] = next_state
            self._reduce_sigma = self.spec.apply_call(
                call, self._reduce_sigma
            )
            if state is None:
                state = _CallState(first_seq=seq)
                self.inflight[key] = state
            state.applied = set(self.nodes)
            self._retire(key, state)
        elif rule in _LOCAL_APPLY_RULES:
            self.applies_checked += 1
            node = event.node
            if retired and node in self._joined:
                # Catch-up replay: the joiner drains the transferred
                # rings, re-emitting applies for calls the rest of the
                # cluster retired long ago.  Fold them (order comes
                # from the authoritative rings, already verified among
                # the incumbents) and dedup exactly per origin.
                caught = self._joiner_caught.setdefault(
                    node, {}
                ).setdefault(event.origin, _IntervalSet())
                if event.rid in caught:
                    self._violation(
                        "duplicate",
                        f"{call} applied twice at {node} (rule {rule})",
                        self._chain(key),
                    )
                    return
                caught.add(event.rid)
                next_state = self.spec.apply_call(call, self.sigma[node])
                if not self.spec.invariant(next_state):
                    self._violation(
                        "integrity",
                        f"{call} not permissible at its apply state "
                        f"({rule} at {node}, catch-up)",
                        self._chain(key),
                    )
                self.sigma[node] = next_state
                return
            if retired or (state is not None and node in state.applied):
                self._violation(
                    "duplicate",
                    f"{call} applied twice at {node} (rule {rule})",
                    self._chain(key),
                )
                return
            if state is None:
                state = _CallState(first_seq=seq)
                self.inflight[key] = state
                if len(self.inflight) > self.peak_window:
                    self.peak_window = len(self.inflight)
            next_state = self.spec.apply_call(call, self.sigma[node])
            if not self.spec.invariant(next_state):
                self._violation(
                    "integrity",
                    f"{call} not permissible at its apply state "
                    f"({rule} at {node})",
                    self._chain(key),
                )
            self.sigma[node] = next_state
            state.applied.add(node)
            if rule in ("CONF", "CONF_APP"):
                group = self.coordination.sync_group(event.method)
                if group is None:
                    self._violation(
                        "vocabulary",
                        f"{rule} event for conflict-free method "
                        f"{event.method!r} at {node}",
                        self._chain(key),
                    )
                else:
                    self._group_apply(group.gid, node, key, state)
            if len(state.applied) == len(self.nodes):
                if state.gid:
                    self._drain_group(state.gid)
                else:
                    self._retire(key, state)
        else:
            self._violation(
                "vocabulary",
                f"unknown rule {rule!r} at {event.node}",
                self._chain(key),
            )

    # -- elastic membership ----------------------------------------------

    def _member(self, event: TraceEvent) -> None:
        """Evolve the roster at a ``member`` trace event.

        ``member_join`` seeds the joiner's replayed state from the
        running REDUCE fold (its state transfer pulls the summary
        slots); its apply events then replay the transferred history.
        ``member_leave`` excuses the node from convergence: in-window
        calls stop waiting for it, and its group-order structures drop.
        """
        subject = event.origin
        if event.name == "member_join":
            if subject in self._node_set:
                return
            self._node_set.add(subject)
            self.nodes = sorted(self._node_set)
            self._joined.add(subject)
            self._departed.discard(subject)
            # Deep-copy through the wire codec: a shared state object
            # would alias if a spec's apply_call ever mutates in place.
            self.sigma[subject] = decode_value(
                encode_value(self._reduce_sigma)
            )
        elif event.name == "member_leave":
            if subject not in self._node_set:
                return
            self._node_set.discard(subject)
            self.nodes = sorted(self._node_set)
            self._departed.add(subject)
            self.sigma.pop(subject, None)
            self._joiner_caught.pop(subject, None)
            self._drop_node(subject)
        # state_xfer and friends are informational

    def _drop_node(self, name: str) -> None:
        """Sweep the window after ``name`` left the cluster."""
        for queues in self._group_queues.values():
            queues.pop(name, None)
        self._group_counts = {
            (gid, node): count
            for (gid, node), count in self._group_counts.items()
            if node != name
        }
        self._group_pairs = {
            (gid, a, b): pairs
            for (gid, a, b), pairs in self._group_pairs.items()
            if name not in (a, b)
        }
        for state in self.inflight.values():
            state.applied.discard(name)
            state.group_pos.pop(name, None)
        # Conflict-free calls now applied at every remaining node retire;
        # group calls retire through the usual common-prefix drain.
        for key, state in list(self.inflight.items()):
            if not state.gid and len(state.applied) == len(self.nodes):
                self._retire(key, state)
        for gid in list(self._group_queues):
            self._drain_group(gid)

    # -- sync-group total order (obligation 2, incremental) --------------

    def _group_apply(self, gid: str, node: str, key: tuple[str, int],
                     state: _CallState) -> None:
        pos = self._group_counts.get((gid, node), 0)
        self._group_counts[(gid, node)] = pos + 1
        state.gid = gid
        state.group_pos[node] = pos
        self._group_queues.setdefault(gid, {}).setdefault(
            node, []
        ).append(key)
        for other, other_pos in state.group_pos.items():
            if other == node:
                continue
            if node < other:
                a, b, pos_a, pos_b = node, other, pos, other_pos
            else:
                a, b, pos_a, pos_b = other, node, other_pos, pos
            pairs = self._group_pairs.setdefault((gid, a, b), [])
            entry = (pos_a, pos_b, key)
            index = bisect.bisect_left(pairs, entry)
            # The existing common set is pos_b-monotone in pos_a order,
            # so the new call is an inversion iff it breaks monotonicity
            # against an immediate neighbour.
            if index > 0 and pairs[index - 1][1] > pos_b:
                self._order_violation(gid, a, b, key, pairs[index - 1][2])
            elif index < len(pairs) and pairs[index][1] < pos_b:
                self._order_violation(gid, a, b, pairs[index][2], key)
            pairs.insert(index, entry)

    def _order_violation(self, gid: str, a: str, b: str,
                         earlier: tuple[str, int],
                         later: tuple[str, int]) -> None:
        self._violation(
            "order",
            f"sync group {gid}: {a} applied {_key_str(earlier)} before "
            f"{_key_str(later)} but {b} applied them in the opposite "
            f"order",
            self._chain(later) + self._chain(earlier),
        )

    def _drain_group(self, gid: str) -> None:
        """Retire the group's verified common prefix.

        A group call leaves the window only when it heads *every*
        node's unretired apply order and is applied everywhere — so a
        retired call can never be the missing half of a future
        inversion, and the pairwise structures shrink from the front.
        """
        queues = self._group_queues.get(gid)
        if queues is None:
            return
        while True:
            if len(queues) < len(self.nodes):
                return  # some node has not applied any group call yet
            heads = {queue[0] if queue else None for queue in queues.values()}
            if len(heads) != 1:
                return
            (head,) = heads
            if head is None:
                return
            state = self.inflight.get(head)
            if state is None or len(state.applied) < len(self.nodes):
                return
            for node, queue in queues.items():
                queue.pop(0)
                other_nodes = [m for m in state.group_pos if m != node]
                for other in other_nodes:
                    a, b = (node, other) if node < other else (other, node)
                    pairs = self._group_pairs.get((gid, a, b))
                    if not pairs:
                        continue
                    pos_a = state.group_pos[a]
                    index = bisect.bisect_left(pairs, (pos_a,))
                    if index < len(pairs) and pairs[index][2] == head:
                        pairs.pop(index)
            self._retire(head, state)

    # -- retirement ------------------------------------------------------

    def _retire(self, key: tuple[str, int], state: _CallState) -> None:
        self.retired.setdefault(key[0], _IntervalSet()).add(key[1])
        self.retired_count += 1
        self.inflight.pop(key, None)
        chain = self._chains.pop(key, None)
        if chain is not None:
            self._retained -= len(chain)

    def verified_seq(self) -> int:
        """The checkpointed frontier: every event at or below this
        sequence number belongs to a fully verified (retired) prefix or
        the serialized window."""
        if not self.inflight:
            return self.last_seq
        return min(s.first_seq for s in self.inflight.values()) - 1

    # -- chains ----------------------------------------------------------

    def _chain_add(self, key: tuple[str, int], event: TraceEvent) -> None:
        chain = self._chains.get(key)
        if chain is None:
            if len(self._chains) > max(256, 4 * len(self.inflight) + 64):
                self._prune_chains()
            chain = self._chains[key] = []
        chain.append(event)
        self._retained += 1
        if len(chain) > _CHAIN_LIMIT:
            chain.pop(0)
            self._retained -= 1
        if self._retained > self.peak_retained:
            self.peak_retained = self._retained

    def _prune_chains(self) -> None:
        """Evict cached chains of calls that never became (or are no
        longer) in-window — e.g. span events whose rule event was lost
        to a gap — oldest first."""
        excess = len(self._chains) - max(128, 2 * len(self.inflight) + 32)
        if excess <= 0:
            return
        for key in list(self._chains):
            if excess <= 0:
                break
            if key in self.inflight:
                continue
            self._retained -= len(self._chains.pop(key))
            excess -= 1

    def _chain(self, key: tuple[str, int]) -> list[TraceEvent]:
        return list(self._chains.get(key, ()))

    def _violation(self, kind: str, message: str,
                   chain: list[TraceEvent]) -> None:
        if len(self.violations) < self.max_violations:
            self.violations.append(Violation(kind, message, chain))

    # -- reporting -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Live progress counters (sampled by the metrics emitter)."""
        return {
            "events": self.events_checked,
            "calls": self.calls_checked,
            "applies": self.applies_checked,
            "violations": len(self.violations),
            "window": len(self.inflight),
            "retained_events": self._retained,
            "peak_window": self.peak_window,
            "peak_retained_events": self.peak_retained,
            "retired": self.retired_count,
            "verified_seq": self.verified_seq(),
            "last_seq": self.last_seq,
            "gaps": len(self.gaps),
        }

    def finish(self, dropped: int = 0,
               gaps: Iterable[tuple] = ()) -> CheckReport:
        """Close the stream and return the verdict.

        ``dropped``/``gaps`` fold in drop accounting from an upstream
        recorder (tap mode sees every event, so both default to zero);
        gaps the checker inferred from sequence discontinuities are
        reported either way.  Like the offline checker, a stream with
        losses cannot attest convergence — integrity, order, and
        duplicate findings stand regardless.
        """
        report = CheckReport(nodes=list(self.nodes), label="stream check")
        report.calls_checked = self.calls_checked
        report.applies_checked = self.applies_checked
        report.violations = list(self.violations)
        report.faults = dict(self.faults)
        report.repairs = dict(self.repairs)
        if not self.nodes:
            if not self._departed:
                report.violations.append(
                    Violation("vocabulary", "empty trace: no nodes recorded")
                )
            self._finished = report
            return report
        all_gaps = [(int(g[0]), int(g[1])) for g in self.gaps]
        all_gaps += [(int(g[0]), int(g[1])) for g in gaps]
        missing = sum(hi - lo + 1 for lo, hi in self.gaps)
        if dropped or all_gaps:
            detail = f"stream dropped {dropped or missing} event(s)"
            if all_gaps:
                shown = ", ".join(
                    f"gap at seq {lo}..{hi}" for lo, hi in all_gaps[:5]
                )
                if len(all_gaps) > 5:
                    shown += f", … ({len(all_gaps)} gaps)"
                detail += f" — {shown}"
            detail += ": cannot attest convergence"
            report.violations.append(Violation("truncated", detail))
            self._finished = report
            return report
        union = set(self.inflight)
        for node in self.nodes:
            node_missing = sorted(
                key for key, state in self.inflight.items()
                if node not in state.applied
            )
            for key in node_missing[:3]:
                report.violations.append(Violation(
                    "convergence",
                    f"{node} never applied {key[0]}#{key[1]} "
                    f"({len(node_missing)} call(s) missing at {node})",
                    self._chain(key),
                ))
        fully_applied = all(
            len(state.applied) == len(self.nodes)
            for state in self.inflight.values()
        )
        if union and not fully_applied:
            self._finished = report
            return report
        base = self.nodes[0]
        for node in self.nodes[1:]:
            if not self.spec.state_eq(self.sigma[base], self.sigma[node]):
                report.violations.append(Violation(
                    "convergence",
                    f"equal histories but diverged states: "
                    f"{base} != {node} "
                    f"({self.sigma[base]!r} vs {self.sigma[node]!r})",
                ))
        self._finished = report
        return report

    # -- convenience entry points ----------------------------------------

    def check(self, events: Iterable[TraceEvent], dropped: int = 0,
              gaps: Iterable[tuple] = ()) -> CheckReport:
        """Feed a whole (ordered) event sequence and finish."""
        self.feed_many(events)
        return self.finish(dropped=dropped, gaps=gaps)

    def check_jsonl(self, path: str) -> CheckReport:
        """Tail a JSONL trace file with bounded memory."""
        dropped = 0
        gaps: list = []
        for record in iter_jsonl(path):
            if isinstance(record, dict):  # the meta line
                dropped = record.get("dropped", 0)
                gaps = [tuple(g[:2]) for g in record.get("gaps", [])]
                continue
            self.feed(record)
        return self.finish(dropped=dropped, gaps=gaps)

    # -- checkpoint / resume ---------------------------------------------

    def checkpoint(self) -> CheckpointState:
        """Snapshot the full checker state as deterministic JSON."""
        sigma = {}
        for node, state in self.sigma.items():
            sigma[node] = base64.b64encode(
                encode_value(state)
            ).decode("ascii")
        payload: dict[str, Any] = {
            "events_checked": self.events_checked,
            "calls_checked": self.calls_checked,
            "applies_checked": self.applies_checked,
            "peak_window": self.peak_window,
            "peak_retained": self.peak_retained,
            "retired_count": self.retired_count,
            "last_seq": self.last_seq,
            "sigma": sigma,
            "retired": {
                origin: [list(span) for span in spans.spans]
                for origin, spans in sorted(self.retired.items())
            },
            "group_counts": {
                f"{gid}|{node}": count
                for (gid, node), count in sorted(self._group_counts.items())
            },
            "group_queues": {
                gid: {
                    node: [_key_str(key) for key in queue]
                    for node, queue in sorted(queues.items())
                }
                for gid, queues in sorted(self._group_queues.items())
            },
            "group_pairs": {
                f"{gid}|{a}|{b}": [
                    [pos_a, pos_b, _key_str(key)]
                    for pos_a, pos_b, key in pairs
                ]
                for (gid, a, b), pairs in sorted(self._group_pairs.items())
            },
            "inflight": {
                _key_str(key): {
                    "first_seq": state.first_seq,
                    "gid": state.gid,
                    "applied": sorted(state.applied),
                    "group_pos": dict(sorted(state.group_pos.items())),
                }
                for key, state in sorted(self.inflight.items())
            },
            "chains": {
                _key_str(key): [event_to_dict(e) for e in chain]
                for key, chain in sorted(self._chains.items())
            },
            "violations": [
                {
                    "kind": v.kind,
                    "message": v.message,
                    "chain": [event_to_dict(e) for e in v.chain],
                }
                for v in self.violations
            ],
            "faults": dict(sorted(self.faults.items())),
            "repairs": dict(sorted(self.repairs.items())),
            "gaps": [list(gap) for gap in self.gaps],
            "joined": sorted(self._joined),
            "departed": sorted(self._departed),
            "reduce_sigma": base64.b64encode(
                encode_value(self._reduce_sigma)
            ).decode("ascii"),
            "joiner_caught": {
                joiner: {
                    origin: [list(span) for span in spans.spans]
                    for origin, spans in sorted(per_origin.items())
                }
                for joiner, per_origin in sorted(self._joiner_caught.items())
            },
        }
        return CheckpointState(
            spec_name=self.spec.name,
            nodes=list(self.nodes),
            next_seq=self._expect if self._expect is not None else 0,
            payload=payload,
        )

    @classmethod
    def resume(cls, coordination: Coordination,
               checkpoint: CheckpointState,
               max_violations: int = 25,
               strict_seq: bool = True) -> "StreamingChecker":
        """Rebuild a checker from a checkpoint; feeding it the stream
        from the beginning (or from the checkpoint) reaches the same
        verdict as an uninterrupted run."""
        if checkpoint.spec_name != coordination.spec.name:
            raise ValueError(
                f"checkpoint is for spec {checkpoint.spec_name!r}, "
                f"not {coordination.spec.name!r}"
            )
        checker = cls(
            coordination, processes=checkpoint.nodes,
            max_violations=max_violations, strict_seq=strict_seq,
        )
        payload = checkpoint.payload
        checker.events_checked = payload["events_checked"]
        checker.calls_checked = payload["calls_checked"]
        checker.applies_checked = payload["applies_checked"]
        checker.peak_window = payload["peak_window"]
        checker.peak_retained = payload["peak_retained"]
        checker.retired_count = payload["retired_count"]
        checker.last_seq = payload["last_seq"]
        checker._expect = checkpoint.next_seq
        checker.sigma = {
            node: decode_value(base64.b64decode(data.encode("ascii")))
            for node, data in payload["sigma"].items()
        }
        checker.retired = {
            origin: _IntervalSet([list(span) for span in spans])
            for origin, spans in payload["retired"].items()
        }
        checker._group_counts = {}
        for key_text, count in payload["group_counts"].items():
            gid, _, node = key_text.rpartition("|")
            checker._group_counts[(gid, node)] = count
        checker._group_queues = {
            gid: {
                node: [_key_from_str(text) for text in queue]
                for node, queue in queues.items()
            }
            for gid, queues in payload["group_queues"].items()
        }
        checker._group_pairs = {}
        for key_text, pairs in payload["group_pairs"].items():
            gid, a, b = key_text.rsplit("|", 2)
            checker._group_pairs[(gid, a, b)] = [
                (pos_a, pos_b, _key_from_str(text))
                for pos_a, pos_b, text in pairs
            ]
        checker.inflight = {}
        for key_text, state in payload["inflight"].items():
            checker.inflight[_key_from_str(key_text)] = _CallState(
                first_seq=state["first_seq"],
                gid=state["gid"],
                applied=set(state["applied"]),
                group_pos=dict(state["group_pos"]),
            )
        checker._chains = {}
        checker._retained = 0
        for key_text, chain in payload["chains"].items():
            events = [event_from_dict(record) for record in chain]
            checker._chains[_key_from_str(key_text)] = events
            checker._retained += len(events)
        checker.violations = [
            Violation(
                record["kind"],
                record["message"],
                [event_from_dict(e) for e in record["chain"]],
            )
            for record in payload["violations"]
        ]
        checker.faults = dict(payload["faults"])
        checker.repairs = dict(payload["repairs"])
        checker.gaps = [tuple(gap) for gap in payload["gaps"]]
        checker._joined = set(payload.get("joined", []))
        checker._departed = set(payload.get("departed", []))
        reduce_sigma = payload.get("reduce_sigma")
        if reduce_sigma is not None:
            checker._reduce_sigma = decode_value(
                base64.b64decode(reduce_sigma.encode("ascii"))
            )
        checker._joiner_caught = {
            joiner: {
                origin: _IntervalSet([list(span) for span in spans])
                for origin, spans in per_origin.items()
            }
            for joiner, per_origin in payload.get("joiner_caught", {}).items()
        }
        return checker
