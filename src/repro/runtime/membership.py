"""Elastic membership: epochs plus the join/leave rewiring protocol.

The paper's protocol assumes a fixed replica set; the production
north-star does not.  This module adds joint membership change on top
of Mu and the state-transfer engine:

- :class:`MembershipEpoch` — the versioned member list.  Every change
  advances the version; the epoch is wire-coded with the cluster codec
  (either wire version) and each node carries its current view in the
  ``membership`` section of ``HambandNode.stats()``.
- :func:`join_cluster` — scale-out.  The new node is added to the
  fabric (all-to-all RC mesh plus the per-group Mu channels), every
  live member rewires its four layers for the extra peer
  (:meth:`~repro.runtime.node.HambandNode.add_peer`: F ring + ack
  regions and reader/writer state, summary slots, failure-detector
  polling, a control listener, Mu membership with write permission
  denied), and the joiner is built against the *founding* process list
  for wire parity — its own name rides the codec's inline escape, so
  a joiner never perturbs the interned string table the founders
  agreed on.  The joiner starts ``failed`` (requests redirected away)
  and flips live only after a :class:`~repro.runtime.statexfer.
  StateTransfer` pass installs the committed prefix under the frontier
  barrier — the SAME engine restarts and partition heals use.
- :func:`leave_cluster` — scale-in.  The departing node is stopped
  (fail-stop), every remaining member unwires it (writers dropped,
  readers kept so landed records still drain, detector pinned to
  *suspected* so repair-source filters and campaign guards treat it as
  gone, Mu membership shrunk so majorities adjust), and removing a
  group leader triggers the standard staggered re-election.

Rolling upgrades fall out of the wire design: v1/v2 records coexist
per-record and every decoder accepts both, so ``join_cluster`` takes a
``wire_version`` override and a v1 node joins a v2 cluster untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..consensus.mu import mu_channel
from .node import HambandNode
from .statexfer import StateTransfer

__all__ = ["MembershipEpoch", "join_cluster", "leave_cluster"]


@dataclass(frozen=True)
class MembershipEpoch:
    """A versioned member list: the unit of membership agreement."""

    version: int
    members: tuple[str, ...]

    def advance(self, members) -> "MembershipEpoch":
        """The next epoch over ``members`` (any iterable of names)."""
        return MembershipEpoch(self.version + 1, tuple(sorted(members)))

    def encode(self, codec) -> bytes:
        """Wire-code the epoch with the cluster codec (v1 or v2)."""
        return codec.encode_value(("M", self.version, list(self.members)))

    @classmethod
    def decode(cls, codec, payload: bytes) -> "MembershipEpoch":
        value = codec.decode_value(payload)
        if not value or value[0] != "M":
            raise ValueError(f"not a membership epoch record: {value!r}")
        _tag, version, members = value
        return cls(int(version), tuple(members))


def _live_node(cluster) -> HambandNode:
    """Any live, serving member — the observer for leader views and
    the probe that records the membership trace event."""
    for name in sorted(cluster.nodes):
        node = cluster.nodes[name]
        if node.rnode.alive and not node.failed:
            return node
    # Degenerate (everything failed): fall back to any member so the
    # bookkeeping still happens; the checkers will flag the run anyway.
    return cluster.nodes[sorted(cluster.nodes)[0]]


def _stamp_epoch(cluster) -> None:
    for node in cluster.nodes.values():
        node.membership_epoch = cluster.epoch.version


def join_cluster(cluster, name: str, cpu_cores: int = 2,
                 transfer: bool = True, barrier: bool = True,
                 wire_version: Optional[int] = None) -> HambandNode:
    """Add ``name`` to a running cluster; returns the new node.

    ``transfer=False`` skips the state transfer entirely and
    ``barrier=False`` runs it without leader re-discovery or the
    frontier barrier — both are negative-control knobs (a joiner
    flipped live without the authoritative transfer is provably
    behind; the chaos checkers catch it).  ``wire_version`` overrides
    the joiner's codec version (rolling-upgrade scenarios); decoders
    accept both versions, so mixed clusters interoperate per record.
    """
    if name in cluster.fabric.nodes:
        raise ValueError(f"node {name!r} already exists")
    fabric = cluster.fabric
    coordination = cluster.coordination
    fabric.add_node(name, cpu_cores=cpu_cores)
    fabric.connect_all()
    for group in coordination.sync_groups():
        fabric.connect_all(channel=mu_channel(group.gid))
    observer = _live_node(cluster)
    leaders = {
        gid: observer.conflict.leader_of(gid)
        for gid in observer.conflict.mu_groups
    }
    # Rewire every existing member for the extra peer.
    for node in cluster.nodes.values():
        node.add_peer(name)
    config = cluster.config
    if wire_version is not None and wire_version != config.wire_version:
        config = replace(config, wire_version=wire_version)
    processes = sorted([*cluster.nodes, name])
    joiner = HambandNode(
        fabric.nodes[name],
        coordination,
        processes,
        leaders,
        config,
        cluster.events,
        probe=(
            cluster.probe_factory(name) if cluster.probe_factory else None
        ),
        # Wire parity: the codec's interned string table is derived
        # from the FOUNDING member list on every node, joiner included;
        # the joiner's own name encodes via the inline escape.
        wire_processes=cluster.founding,
    )
    # Mirror of the cluster-construction tail: the joiner is never the
    # leader of an existing group, and non-leaders must hold no write
    # permission on its Mu log QPs.
    for group in coordination.sync_groups():
        gid = group.gid
        leader = leaders[gid]
        for peer in processes:
            if peer in (name, leader):
                continue
            fabric.nodes[name].qp_to(
                peer, mu_channel(gid)
            ).revoke_peer_write()
    #: Not serving until the transfer completes: requests are refused
    #: (redirected by drivers) exactly as for a failed node.
    joiner.failed = True
    cluster.nodes[name] = joiner
    cluster.epoch = cluster.epoch.advance(cluster.nodes)
    _stamp_epoch(cluster)
    observer.probe.member_event(
        "member_join", name, f"epoch={cluster.epoch.version}"
    )

    def go_live():
        if transfer:
            yield from StateTransfer(joiner).run(
                barrier=barrier, reason="join"
            )
        else:
            yield joiner.env.timeout(0.0)
        joiner.failed = False

    joiner._spawn_supervised(go_live(), f"join:{name}")
    return joiner


def leave_cluster(cluster, name: str) -> HambandNode:
    """Remove ``name`` from a running cluster; returns the departed
    node (kept in ``cluster.departed`` — its at-rest ring copies stay
    readable history, never silently reused)."""
    if name not in cluster.nodes:
        raise ValueError(f"no node {name!r} in the cluster")
    if len(cluster.nodes) <= 1:
        raise ValueError("cannot remove the last member")
    departed = cluster.nodes.pop(name)
    cluster.departed[name] = departed
    led = [
        gid
        for gid, mu in departed.conflict.mu_groups.items()
        if mu.leader == name
    ]
    # Fail-stop the departing node: it refuses requests, its heartbeat
    # goes silent, and its fabric endpoint stops serving.
    departed.failed = True
    departed.heartbeat.suspend()
    departed.broadcast.halted = True
    cluster.fabric.nodes[name].crash()
    for node in cluster.nodes.values():
        node.remove_peer(name)
    cluster.epoch = cluster.epoch.advance(cluster.nodes)
    _stamp_epoch(cluster)
    observer = _live_node(cluster)
    observer.probe.member_event(
        "member_leave", name, f"epoch={cluster.epoch.version}"
    )
    if led:
        # Removing a leader forces a clean re-election: the standard
        # staggered campaign machinery runs against the shrunk
        # membership (majorities already adjusted by remove_peer).
        for node in cluster.nodes.values():
            node.conflict.handle_suspect(name)
    return departed
