"""Instrumentation seam threaded through the four runtime layers.

Every layer calls a handful of :class:`RuntimeProbe` hooks on its hot
and rare paths.  The base class is a **no-op** — layers can be used
bare (e.g. in micro-tests) with zero instrumentation cost beyond an
empty method call.  :class:`CountingProbe` is the live implementation
the :class:`~repro.runtime.HambandNode` façade installs by default and
surfaces through ``HambandNode.stats()``, so perf work can measure
before optimizing:

- per-rule applies (REDUCE / FREE / CONF / FREE_APP / CONF_APP / QUERY),
- ring occupancy high-water marks (writer-side tail − acked depth),
- records drained per ring (reader-side consumption totals),
- backpressure stalls per ring (and flow-control re-arms after a
  reader heals),
- conflict-path retries, decided-batch sizes, demotions, hole repairs,
- control-plane forwards, redirects, and rejected calls,
- flow-control ack flushes and broadcast recoveries.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "CountingProbe",
    "RuntimeProbe",
    "rollup_node_stats",
    "rollup_snapshots",
]


class RuntimeProbe:
    """No-op instrumentation interface (override what you measure).

    Hooks are deliberately tiny and exception-free: a probe must never
    change runtime behaviour.  All hooks take plain strings/ints so a
    probe can aggregate however it likes (counters, histograms, traces).
    """

    # -- apply engine ----------------------------------------------------

    def apply(self, rule: str) -> None:
        """One concrete-semantics transition fired (per-rule counter)."""

    def recovered(self) -> None:
        """One broadcast-recovered call delivered via the pending queue."""

    # -- transport -------------------------------------------------------

    def ring_depth(self, ring: str, depth: int) -> None:
        """Observed occupancy of ``ring`` (high-water mark is kept).

        Reserved for *occupancy*: writer-side this is tail − acked;
        per-sweep drain counts go through :meth:`records_drained`.
        """

    def records_drained(self, ring: str, count: int) -> None:
        """``count`` records consumed from ``ring`` in one sweep."""

    def backpressure_stall(self, ring: str) -> None:
        """A writer waited one backpressure round on ``ring``."""

    def ack_flush(self, ring: str) -> None:
        """One flow-control ack write pushed back to ``ring``'s writer."""

    def flow_rearmed(self, ring: str) -> None:
        """Backpressure re-armed against ``ring``'s reader: after a
        fallback to ring-sizing mode, a fresh ack proved the reader is
        draining again."""

    # -- conflict coordinator --------------------------------------------

    def conflict_retry(self, gid: str) -> None:
        """A conflicting call was requeued awaiting permissibility."""

    def conflict_batch(self, gid: str, size: int) -> None:
        """A decision of ``size`` calls committed for group ``gid``."""

    def demoted(self, gid: str) -> None:
        """This node stopped leading ``gid``."""

    def hole_repair(self, gid: str) -> None:
        """The hole detector triggered a log self-repair for ``gid``."""

    def ring_resync(self, ring: str) -> None:
        """A lapped reader fast-forwarded past an overwritten window
        of ``ring`` (records there recovered out of band)."""

    # -- silent-corruption detection and repair --------------------------

    def crc_reject(self, ring: str) -> None:
        """A checksummed record on ``ring`` failed CRC verification —
        a bitflip or torn interior write was *detected* instead of
        delivered."""

    def torn_detect(self, ring: str) -> None:
        """A repaired slot's pre-repair bytes were classified as a torn
        (prefix-only) write rather than a bitflip."""

    def slot_repair(self, ring: str) -> None:
        """One quarantined/corrupt/diverged slot was refetched from an
        authoritative copy and rewritten locally."""

    def wire_reject(self, ring: str) -> None:
        """A drained record's payload failed wire decoding and was
        skipped (only reachable with ring integrity off — the CRC
        rejects such records first)."""

    def scrub_pass(self, ring: str) -> None:
        """The background scrubber completed one verification window
        over ``ring``'s committed prefix."""

    def trace_repair(self, ring: str, index: int, kind: str) -> None:
        """A detected corruption on ``ring`` at record ``index`` was
        repaired; ``kind`` classifies it (``bitflip`` / ``torn`` /
        ``scrub``).  Recorded by tracing probes so the offline checker
        can correlate injected faults with repairs."""

    # -- control plane ---------------------------------------------------

    def forwarded(self, method: str) -> None:
        """A conflicting call was served on behalf of a remote client."""

    def redirected(self, method: str) -> None:
        """A forwarded call bounced: the serving peer no longer leads."""

    def rejected(self, reason: str) -> None:
        """A request failed (reason: impermissible / not_leader / ...)."""

    # -- faults and recovery ---------------------------------------------

    def trace_fault(self, kind: str, target: str, detail: str) -> None:
        """The fault injector injected ``kind`` at/against ``target``."""

    def op_retry(self, kind: str) -> None:
        """A one-sided op failed transiently and was retried."""

    def retry_budget_exhausted(self, kind: str) -> None:
        """A retry loop gave up because its cumulative backoff budget
        ran out (distinct from exhausting the attempt cap)."""

    # -- adaptive failure detection and hedging --------------------------

    def peer_degraded(self, peer: str) -> None:
        """The latency health tracker classified ``peer`` as degraded
        (limping but alive): its one-sided poll-read EWMA crossed the
        degraded threshold."""

    def phi_suspect(self, peer: str) -> None:
        """The phi-accrual detector crossed its threshold for ``peer``
        (heartbeat arrivals stopped fitting the learned distribution)."""

    def hedged_read(self, ring: str) -> None:
        """A hedge fired: the primary read outlived the hedge delay and
        a second read was posted to the next-best source."""

    def hedge_win(self, ring: str) -> None:
        """The hedge read completed first (the hedge paid off)."""

    def catch_up(self, source: str) -> None:
        """This node completed a rejoin/catch-up pass (from ``source``,
        or ``"restart"`` for a full post-restart rejoin)."""

    # -- membership -------------------------------------------------------

    def member_event(self, event: str, node: str, detail: str = "") -> None:
        """A membership change became visible at this node:
        ``member_join`` / ``member_leave`` when the epoch advanced (the
        subject is ``node``), or ``state_xfer`` when a joining or
        rejoining node completed its authoritative state transfer.
        Tracing probes record these so the trace checkers account for
        mid-run membership."""

    # -- causal tracing (no-op unless a TracingProbe is installed) --------
    #
    # The span/trace hooks carry enough identity (method, origin, rid)
    # for a tracing probe to stitch per-call lifecycles —
    # invoke → propagate → decide → apply → visible — without the
    # layers ever building strings or dicts on the hot path.  ``rid=0``
    # marks calls without a request id (queries).

    def span_begin(self, phase: str, method: str, origin: str,
                   rid: int) -> None:
        """A per-call lifecycle phase started at this node."""

    def span_end(self, phase: str, method: str, origin: str,
                 rid: int) -> None:
        """The matching phase finished (latency = end - begin)."""

    def trace_apply(self, rule: str, method: str, origin: str, rid: int,
                    arg: Any = None) -> None:
        """A concrete-semantics transition became *visible* in σ here.

        Fired at commit time — REDUCE/FREE at the issuing node, CONF at
        the leader only after replication succeeded, FREE_APP/CONF_APP
        at the applying node, QUERY at evaluation.  ``arg`` rides along
        so a recorded trace can be replayed offline (the no-op and
        counting probes ignore it).
        """

    def trace_transfer(self, ring: str, method: str, origin: str,
                       rid: int, size: int) -> None:
        """``size`` payload bytes for one call crossed ``ring``."""

    # -- reporting -------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A point-in-time copy of whatever the probe accumulated."""
        return {}


class CountingProbe(RuntimeProbe):
    """Counter/high-water-mark probe backing ``HambandNode.stats()``."""

    def __init__(self) -> None:
        self.applies: dict[str, int] = {}
        self.ring_highwater: dict[str, int] = {}
        self.drained: dict[str, int] = {}
        self.backpressure_stalls: dict[str, int] = {}
        self.ack_flushes: dict[str, int] = {}
        self.flow_rearms: dict[str, int] = {}
        self.conflict_retries: dict[str, int] = {}
        self.conflict_batches: dict[str, int] = {}
        self.conflict_batch_max: dict[str, int] = {}
        self.demotions: dict[str, int] = {}
        self.hole_repairs: dict[str, int] = {}
        self.ring_resyncs: dict[str, int] = {}
        self.crc_rejects: dict[str, int] = {}
        self.torn_detections: dict[str, int] = {}
        self.slot_repairs: dict[str, int] = {}
        self.wire_rejects: dict[str, int] = {}
        self.scrub_passes: dict[str, int] = {}
        self.forwards: dict[str, int] = {}
        self.redirects: dict[str, int] = {}
        self.rejections: dict[str, int] = {}
        self.faults: dict[str, int] = {}
        self.op_retries: dict[str, int] = {}
        self.retry_budget_exhaustions: dict[str, int] = {}
        self.peer_degradations: dict[str, int] = {}
        self.phi_suspects: dict[str, int] = {}
        self.hedged: dict[str, int] = {}
        self.hedge_win_counts: dict[str, int] = {}
        self.catch_ups: dict[str, int] = {}
        self.member_events: dict[str, int] = {}
        self.recoveries = 0

    @staticmethod
    def _bump(table: dict[str, int], key: str, by: int = 1) -> None:
        table[key] = table.get(key, 0) + by

    def apply(self, rule: str) -> None:
        self._bump(self.applies, rule)

    def recovered(self) -> None:
        self.recoveries += 1

    def ring_depth(self, ring: str, depth: int) -> None:
        if depth > self.ring_highwater.get(ring, 0):
            self.ring_highwater[ring] = depth

    def records_drained(self, ring: str, count: int) -> None:
        self._bump(self.drained, ring, count)

    def backpressure_stall(self, ring: str) -> None:
        self._bump(self.backpressure_stalls, ring)

    def ack_flush(self, ring: str) -> None:
        self._bump(self.ack_flushes, ring)

    def flow_rearmed(self, ring: str) -> None:
        self._bump(self.flow_rearms, ring)

    def conflict_retry(self, gid: str) -> None:
        self._bump(self.conflict_retries, gid)

    def conflict_batch(self, gid: str, size: int) -> None:
        self._bump(self.conflict_batches, gid)
        if size > self.conflict_batch_max.get(gid, 0):
            self.conflict_batch_max[gid] = size

    def demoted(self, gid: str) -> None:
        self._bump(self.demotions, gid)

    def hole_repair(self, gid: str) -> None:
        self._bump(self.hole_repairs, gid)

    def ring_resync(self, ring: str) -> None:
        self._bump(self.ring_resyncs, ring)

    def crc_reject(self, ring: str) -> None:
        self._bump(self.crc_rejects, ring)

    def torn_detect(self, ring: str) -> None:
        self._bump(self.torn_detections, ring)

    def slot_repair(self, ring: str) -> None:
        self._bump(self.slot_repairs, ring)

    def wire_reject(self, ring: str) -> None:
        self._bump(self.wire_rejects, ring)

    def scrub_pass(self, ring: str) -> None:
        self._bump(self.scrub_passes, ring)

    def forwarded(self, method: str) -> None:
        self._bump(self.forwards, method)

    def redirected(self, method: str) -> None:
        self._bump(self.redirects, method)

    def rejected(self, reason: str) -> None:
        self._bump(self.rejections, reason)

    def trace_fault(self, kind: str, target: str, detail: str) -> None:
        self._bump(self.faults, kind)

    def op_retry(self, kind: str) -> None:
        self._bump(self.op_retries, kind)

    def retry_budget_exhausted(self, kind: str) -> None:
        self._bump(self.retry_budget_exhaustions, kind)

    def peer_degraded(self, peer: str) -> None:
        self._bump(self.peer_degradations, peer)

    def phi_suspect(self, peer: str) -> None:
        self._bump(self.phi_suspects, peer)

    def hedged_read(self, ring: str) -> None:
        self._bump(self.hedged, ring)

    def hedge_win(self, ring: str) -> None:
        self._bump(self.hedge_win_counts, ring)

    def catch_up(self, source: str) -> None:
        self._bump(self.catch_ups, source)

    def member_event(self, event: str, node: str, detail: str = "") -> None:
        self._bump(self.member_events, event)

    def snapshot(self) -> dict[str, Any]:
        return {
            "applies": dict(self.applies),
            "ring_highwater": dict(self.ring_highwater),
            "records_drained": dict(self.drained),
            "backpressure_stalls": dict(self.backpressure_stalls),
            "ack_flushes": dict(self.ack_flushes),
            "flow_rearms": dict(self.flow_rearms),
            "conflict_retries": dict(self.conflict_retries),
            "conflict_batches": dict(self.conflict_batches),
            "conflict_batch_max": dict(self.conflict_batch_max),
            "demotions": dict(self.demotions),
            "hole_repairs": dict(self.hole_repairs),
            "ring_resyncs": dict(self.ring_resyncs),
            "crc_rejects": dict(self.crc_rejects),
            "torn_detected": dict(self.torn_detections),
            "slot_repairs": dict(self.slot_repairs),
            "wire_rejects": dict(self.wire_rejects),
            "scrub_passes": dict(self.scrub_passes),
            "forwards": dict(self.forwards),
            "redirects": dict(self.redirects),
            "rejections": dict(self.rejections),
            "faults": dict(self.faults),
            "op_retries": dict(self.op_retries),
            "retry_budget_exhausted": dict(self.retry_budget_exhaustions),
            "peer_degraded": dict(self.peer_degradations),
            "fd_phi_suspects": dict(self.phi_suspects),
            "hedged_reads": dict(self.hedged),
            "hedge_wins": dict(self.hedge_win_counts),
            "catch_ups": dict(self.catch_ups),
            "member_events": dict(self.member_events),
            "recoveries": self.recoveries,
        }


#: Snapshot sections that aggregate by maximum instead of by sum
#: (high-water marks are not additive across nodes).
MAX_SECTIONS = ("ring_highwater", "conflict_batch_max")


def rollup_snapshots(snapshots: dict[str, dict[str, Any]],
                     max_sections: tuple[str, ...] = MAX_SECTIONS,
                     ) -> dict[str, Any]:
    """Aggregate per-node probe snapshots into one cluster-wide view.

    Plain integers and ``{key: int}`` sections are summed across nodes;
    sections named in ``max_sections`` keep the per-key maximum (a
    cluster high-water mark is the worst node's, not the total).
    Non-numeric sections (e.g. a tracing probe's nested phase
    summaries) are skipped — dashboards read those per node.
    """
    rollup: dict[str, Any] = {}
    for snapshot in snapshots.values():
        for section, value in snapshot.items():
            if isinstance(value, bool):
                continue
            if isinstance(value, (int, float)):
                rollup[section] = rollup.get(section, 0) + value
            elif isinstance(value, dict):
                merged = rollup.setdefault(section, {})
                for key, count in value.items():
                    if not isinstance(count, (int, float)) or isinstance(
                        count, bool
                    ):
                        continue
                    if section in max_sections:
                        merged[key] = max(merged.get(key, 0), count)
                    else:
                        merged[key] = merged.get(key, 0) + count
    return rollup


def rollup_node_stats(per_node: dict[str, dict[str, Any]],
                      max_sections: tuple[str, ...] = MAX_SECTIONS,
                      ) -> dict[str, Any]:
    """Aggregate ``HambandNode.stats()``-shaped snapshots into one view.

    Each input value is a ``{"counters": ..., "probe": ...}`` dict; the
    result has the same shape with both sections rolled up by
    :func:`rollup_snapshots`.  Used for the per-cluster rollup in
    :meth:`~repro.runtime.HambandCluster.stats` and — because the
    output shape matches the input shape — again for the global rollup
    over per-shard rollups in
    :meth:`~repro.runtime.sharding.ShardedCluster.stats`.
    """
    return {
        "counters": rollup_snapshots(
            {name: {"counters": stats.get("counters", {})}
             for name, stats in per_node.items()},
            max_sections,
        ).get("counters", {}),
        "probe": rollup_snapshots(
            {name: stats.get("probe", {})
             for name, stats in per_node.items()},
            max_sections,
        ),
    }
