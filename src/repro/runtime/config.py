"""Runtime tunables, shared by all four runtime layers.

Kept in a leaf module (like :mod:`.errors`) so layers can type against
:class:`RuntimeConfig` without importing the node façade.  Region name
helpers for the F/L/S rings and their flow-control ack slots also live
here: every layer and the Mu wiring agree on the naming scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "RuntimeConfig",
    "f_ack_region",
    "f_region",
    "l_ack_region",
    "l_region",
    "s_region",
]


@dataclass
class RuntimeConfig:
    """Tunables of the Hamband runtime (times in microseconds)."""

    ring_slots: int = 8192
    slot_size: int = 512
    summary_payload: int = 4096
    backup_size: int = 4608
    #: Buffer-traversal cadence when the last sweep found nothing.
    poll_interval_us: float = 1.0
    #: Cadence right after progress (records often arrive in trains).
    poll_hot_us: float = 0.2
    #: Adaptive polling: consecutive empty sweeps multiply the idle
    #: wait by this factor (exponential backoff), reset on progress.
    #: 1.0 restores the fixed-cadence behaviour.
    poll_backoff: float = 2.0
    #: Adaptive polling: cap on the backed-off idle wait.  The
    #: effective cap is ``max(poll_idle_max_us, poll_interval_us)`` so
    #: configs that slow the base cadence keep their floor.
    poll_idle_max_us: float = 8.0
    #: Wire codec version for the data plane (see docs/wire_format.md):
    #: 1 = self-describing tagged codec, 2 = varint/zigzag with the
    #: per-cluster interned string table.  Decoders accept both.
    wire_version: int = 2
    #: End-to-end ring integrity: writers emit checksummed v2 records
    #: (CRC over length+payload+generation) so readers *reject*
    #: bitflipped and torn-interior records instead of delivering
    #: garbage.  Readers accept both layouts regardless, so toggling
    #: only changes what this node ships (see docs/wire_format.md).
    ring_integrity: bool = True
    #: Background scrubber: 0 disables; otherwise each node re-verifies
    #: a bounded window of its committed F-ring prefixes against the
    #: writer's authoritative copy every ``scrub_interval_us``,
    #: repairing divergence anti-entropy style.
    scrub_interval_us: float = 0.0
    #: Rate limit: slots re-verified per scrub pass per ring.
    scrub_batch: int = 16
    apply_cpu_us: float = 0.15
    local_cpu_us: float = 0.08
    query_cpu_us: float = 0.20
    hb_interval_us: float = 20.0
    fd_poll_us: float = 60.0
    suspect_after: int = 3
    #: Root seed for runtime-internal randomness (retry jitter); the
    #: harness threads the experiment seed through so same seed ⇒ same
    #: schedule.
    seed: int = 0
    #: Failure detection mode: ``"fixed"`` is the classic
    #: count-stale-polls timeout (byte-compatible with all existing
    #: traces); ``"phi"`` layers a phi-accrual detector over
    #: inter-heartbeat arrival samples plus a poll-read latency health
    #: tracker that classifies limping-but-alive peers as *degraded* —
    #: the gray-failure story (see docs/fault_injection.md).
    fd_mode: str = "fixed"
    #: Phi threshold: suspect a peer once the accrued suspicion level
    #: (-log10 of the probability that the heartbeat is merely late)
    #: crosses this.  8 ≈ "one false positive per 10^8 arrivals".
    fd_phi_threshold: float = 8.0
    #: Sliding window of inter-arrival samples per peer.
    fd_phi_window: int = 32
    #: Floor on the arrival-interval std-dev so a perfectly regular
    #: heartbeat stream doesn't make phi explode on the first wobble.
    fd_phi_min_std_us: float = 10.0
    #: Peer-health EWMA smoothing for one-sided poll-read latency.
    health_alpha: float = 0.2
    #: A peer is *degraded* when its latency EWMA exceeds the healthy
    #: baseline by this factor (after ``degraded_min_samples`` reads),
    #: and recovers below ``degraded_clear_factor``.
    degraded_factor: float = 3.0
    degraded_min_samples: int = 8
    degraded_clear_factor: float = 1.5
    #: Hedged reads (phi mode): fire a second read at the next-best
    #: source after this long; once enough latency samples accrue the
    #: delay adapts to the observed p99 instead.
    hedge_delay_us: float = 8.0
    #: Retry jitter fraction (phi mode only — fixed mode keeps the
    #: bare exponential schedule for byte-compat): each backoff is
    #: multiplied by ``1 ± uniform(0, retry_jitter)``.
    retry_jitter: float = 0.25
    #: Per-op retry budget in microseconds of cumulative backoff;
    #: 0 = unlimited (the attempt cap alone bounds the loop).
    retry_budget_us: float = 0.0
    #: Demote a leader that a quorum of health trackers classify
    #: degraded (phi mode only): the detectors pin suspicion on it and
    #: the existing rank-staggered re-election takes over.
    demote_slow_leader: bool = True
    #: Conflicting calls waiting for permissibility retry at this pace.
    conf_retry_us: float = 2.0
    conf_retry_limit: int = 800
    #: Leader-side decision batching: up to this many queued conflicting
    #: calls are ordered, applied, and replicated in ONE remote write
    #: per follower.  1 disables batching (the paper's configuration).
    conf_batch: int = 1
    vote_timeout_us: float = 800.0
    #: Treat reducible methods as irreducible conflict-free (the paper's
    #: Figure 9 GSet-with-buffers configuration).
    force_buffered: bool = False
    #: Flow control: readers acknowledge ring progress every this many
    #: applied records (one tiny one-sided write back to the writer);
    #: writers block (backpressure) instead of lapping a slow reader.
    #: 0 disables acks — then writers rely on ring sizing alone.
    ack_every: int = 64
    backpressure_wait_us: float = 1.0
    backpressure_limit: int = 20000
    #: Ablation: ship the issuer's *entire* applied map as the
    #: dependency record instead of the projection over Dep(u) —
    #: receivers then wait for everything the issuer had seen (a causal
    #: barrier), not just the calls the invariant actually needs.
    full_dep_barrier: bool = False
    #: Recovery: transiently failed one-sided ops (injected NIC faults,
    #: in-flight partition blips) retry up to this many times with
    #: exponential backoff capped at ``op_retry_cap_us``.
    op_retry_limit: int = 6
    op_retry_us: float = 2.0
    op_retry_cap_us: float = 64.0
    #: Recovery: a forwarded conflicting call waits this long for the
    #: leader's reply before re-resolving the leader and retrying.
    fwd_timeout_us: float = 2000.0
    #: Recovery: the k-th ranked successor candidate waits k stagger
    #: units on top of the vote timeout before campaigning, so healthy
    #: clusters elect the first candidate without duelling elections.
    campaign_stagger_us: float = 200.0
    #: Recovery: a candidate re-campaigns up to this many times while
    #: the suspected leader stays suspected and unled.
    campaign_retry_limit: int = 4
    campaign_retry_us: float = 400.0
    #: State transfer: the frontier barrier polls applied progress at
    #: this cadence and gives up (never wedges) after ``xfer_barrier_us``
    #: — a record blocked on a dependency that cannot arrive degrades
    #: to a late flip, not a hang (the checkers gate the outcome).
    xfer_poll_us: float = 5.0
    xfer_barrier_us: float = 4000.0


def f_region(writer: str) -> str:
    return f"hamband:F:{writer}"


def l_region(gid: str) -> str:
    return f"hamband:L:{gid}"


def s_region(group: str, owner: str) -> str:
    return f"hamband:S:{group}:{owner}"


def f_ack_region(reader: str) -> str:
    """At a writer: the reader's progress ack for the writer's F records."""
    return f"hamband:ack:F:{reader}"


def l_ack_region(gid: str, reader: str) -> str:
    """At a (potential) leader: the reader's progress ack for L:{gid}."""
    return f"hamband:ack:L:{gid}:{reader}"
