"""Wire format: calls and dependency arrays as byte streams (paper §4).

Hamband serializes each call, its unique id, and its variable-sized
dependency arrays into a byte stream before the remote write.  This is
a compact self-describing binary codec for the value shapes the
bundled data types use: None, bool, int, float, str, bytes, tuple,
list, frozenset, and dict.  No pickle: the format is explicit, stable,
and fuzzable (tests/runtime/test_wire.py round-trips it under
hypothesis).
"""

from __future__ import annotations

import struct
from typing import Any

from ..core import Call
from ..core.rdma_semantics import DependencyMap

__all__ = [
    "WireError",
    "decode_call_batch",
    "decode_call_packet",
    "decode_value",
    "encode_call_batch",
    "encode_call_packet",
    "encode_value",
]


class WireError(Exception):
    """Malformed wire data."""


_NONE = b"N"
_TRUE = b"T"
_FALSE = b"F"
_INT = b"i"
_FLOAT = b"f"
_STR = b"s"
_BYTES = b"b"
_TUPLE = b"t"
_LIST = b"l"
_FROZENSET = b"z"
_DICT = b"d"


def encode_value(value: Any) -> bytes:
    """Encode one value; raises :class:`WireError` on unsupported types."""
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += _NONE
    elif value is True:
        out += _TRUE
    elif value is False:
        out += _FALSE
    elif isinstance(value, int):
        payload = str(value).encode("ascii")
        out += _INT + struct.pack("<I", len(payload)) + payload
    elif isinstance(value, float):
        out += _FLOAT + struct.pack("<d", value)
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out += _STR + struct.pack("<I", len(payload)) + payload
    elif isinstance(value, bytes):
        out += _BYTES + struct.pack("<I", len(value)) + value
    elif isinstance(value, tuple):
        out += _TUPLE + struct.pack("<I", len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, list):
        out += _LIST + struct.pack("<I", len(value))
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, frozenset):
        # Canonical order so equal sets encode identically.
        items = sorted(value, key=lambda x: (repr(type(x)), repr(x)))
        out += _FROZENSET + struct.pack("<I", len(items))
        for item in items:
            _encode_into(item, out)
    elif isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        out += _DICT + struct.pack("<I", len(items))
        for key, item in items:
            _encode_into(key, out)
            _encode_into(item, out)
    else:
        raise WireError(f"unsupported wire type {type(value).__name__}")


def decode_value(data: bytes) -> Any:
    """Decode one value; the whole buffer must be consumed.

    Malformed input of any shape raises :class:`WireError` — lower-level
    decoding errors never leak.
    """
    try:
        value, offset = _decode_from(data, 0)
    except WireError:
        raise
    except (
        struct.error,
        TypeError,  # e.g. an unhashable element inside a frozenset
        ValueError,
        UnicodeDecodeError,
        RecursionError,
    ) as exc:
        raise WireError(f"malformed wire data: {exc}") from exc
    if offset != len(data):
        raise WireError(f"{len(data) - offset} trailing bytes")
    return value


def _decode_from(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise WireError("truncated value")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == _NONE:
        return None, offset
    if tag == _TRUE:
        return True, offset
    if tag == _FALSE:
        return False, offset
    if tag == _FLOAT:
        return struct.unpack_from("<d", data, offset)[0], offset + 8
    if tag in (_INT, _STR, _BYTES):
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        payload = data[offset : offset + length]
        if len(payload) != length:
            raise WireError("truncated payload")
        offset += length
        if tag == _INT:
            return int(payload.decode("ascii")), offset
        if tag == _STR:
            return payload.decode("utf-8"), offset
        return bytes(payload), offset
    if tag in (_TUPLE, _LIST, _FROZENSET):
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        if count > len(data) - offset:  # each element is >= 1 byte
            raise WireError("container count exceeds remaining bytes")
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        if tag == _TUPLE:
            return tuple(items), offset
        if tag == _LIST:
            return items, offset
        return frozenset(items), offset
    if tag == _DICT:
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        if count > len(data) - offset:
            raise WireError("container count exceeds remaining bytes")
        result = {}
        for _ in range(count):
            key, offset = _decode_from(data, offset)
            value, offset = _decode_from(data, offset)
            result[key] = value
        return result, offset
    raise WireError(f"unknown tag {tag!r}")


def encode_call_batch(entries: list[tuple[Call, DependencyMap]]) -> bytes:
    """A batched record: several calls (with their dependency arrays)
    decided together by the leader and shipped in one remote write."""
    return encode_value(
        [
            (
                call.method,
                call.arg,
                call.origin,
                call.rid,
                tuple(
                    (proc, method, count)
                    for (proc, method), count in sorted(dep.items())
                ),
            )
            for call, dep in entries
        ]
    )


def decode_call_batch(data: bytes) -> list[tuple[Call, DependencyMap]]:
    """Decode either a batched record or a single call packet.

    Single packets (tuples) decode to a one-element batch, so readers
    handle both shapes uniformly.
    """
    decoded = decode_value(data)
    if isinstance(decoded, tuple):
        decoded = [decoded]
    if not isinstance(decoded, list):
        raise WireError("malformed batch packet")
    entries = []
    for item in decoded:
        if not isinstance(item, tuple) or len(item) != 5:
            raise WireError("malformed batch entry")
        method, arg, origin, rid, dep_triples = item
        dep = {(proc, m): count for (proc, m, count) in dep_triples}
        entries.append((Call(method, arg, origin, rid), dep))
    return entries


def encode_call_packet(call: Call, dep: DependencyMap) -> bytes:
    """A buffered record: the call plus its dependency arrays.

    The dependency map is shipped as (process, method, count) triples —
    the paper's variable-sized per-method arrays.
    """
    dep_triples = tuple(
        (proc, method, count)
        for (proc, method), count in sorted(dep.items())
    )
    return encode_value(
        (call.method, call.arg, call.origin, call.rid, dep_triples)
    )


def decode_call_packet(data: bytes) -> tuple[Call, DependencyMap]:
    decoded = decode_value(data)
    if not isinstance(decoded, tuple) or len(decoded) != 5:
        raise WireError("malformed call packet")
    method, arg, origin, rid, dep_triples = decoded
    dep = {(proc, m): count for (proc, m, count) in dep_triples}
    return Call(method, arg, origin, rid), dep
