"""Wire format: calls and dependency arrays as byte streams (paper §4).

Hamband serializes each call, its unique id, and its variable-sized
dependency arrays into a byte stream before the remote write.  Two
wire versions coexist:

* **v1** — the original compact *self-describing* binary codec for the
  value shapes the bundled data types use: None, bool, int, float,
  str, bytes, tuple, list, frozenset, and dict.  Integers travel as
  length-prefixed ASCII decimal and every length/count is a fixed
  4-byte field.  Simple and fuzzable, but bloated on the hot path.

* **v2** — the hot-path codec (``RuntimeConfig.wire_version = 2``):
  LEB128 varints with zigzag for signed integers, varint lengths and
  counts, a fixed call-packet header of interned origin/method ids
  drawn from a per-cluster :class:`StringTable` (derived
  deterministically from the coordination analysis at build time, so
  every node "negotiates" the identical table without a handshake),
  and packed ``(proc_id, method_id, varint count)`` dependency
  arrays.  v2 frames start with a magic byte (0x01 value, 0x02 call
  packet, 0x03 batch) that no v1 tag uses, so every decoder accepts
  both versions — v1 stays decodable forever.

No pickle: the format is explicit, stable, and fuzzable
(tests/runtime/test_wire.py round-trips both versions under
hypothesis).
"""

from __future__ import annotations

import struct
from typing import Any, Iterable, Optional

from ..core import Call
from ..core.rdma_semantics import DependencyMap

__all__ = [
    "StringTable",
    "WireCodec",
    "WireError",
    "decode_call_batch",
    "decode_call_packet",
    "decode_value",
    "encode_call_batch",
    "encode_call_packet",
    "encode_value",
]


class WireError(Exception):
    """Malformed wire data."""


# --------------------------------------------------------------------------
# v1: self-describing tagged codec (unchanged layout)
# --------------------------------------------------------------------------

_NONE = b"N"
_TRUE = b"T"
_FALSE = b"F"
_INT = b"i"
_FLOAT = b"f"
_STR = b"s"
_BYTES = b"b"
_TUPLE = b"t"
_LIST = b"l"
_FROZENSET = b"z"
_DICT = b"d"

#: v2 frame magics.  None of these collide with a v1 tag byte (all v1
#: tags are printable ASCII), so the first byte of any record
#: unambiguously selects the decoder.
_V2_VALUE = 0x01
_V2_PACKET = 0x02
_V2_BATCH = 0x03


def encode_value(value: Any) -> bytes:
    """Encode one value (v1); raises :class:`WireError` on unsupported
    types."""
    out = bytearray()
    _encode_v1_into(value, out)
    return bytes(out)


def _encode_v1_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += _NONE
    elif value is True:
        out += _TRUE
    elif value is False:
        out += _FALSE
    elif isinstance(value, int):
        payload = str(value).encode("ascii")
        out += _INT + struct.pack("<I", len(payload)) + payload
    elif isinstance(value, float):
        out += _FLOAT + struct.pack("<d", value)
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out += _STR + struct.pack("<I", len(payload)) + payload
    elif isinstance(value, bytes):
        out += _BYTES + struct.pack("<I", len(value)) + value
    elif isinstance(value, tuple):
        out += _TUPLE + struct.pack("<I", len(value))
        for item in value:
            _encode_v1_into(item, out)
    elif isinstance(value, list):
        out += _LIST + struct.pack("<I", len(value))
        for item in value:
            _encode_v1_into(item, out)
    elif isinstance(value, frozenset):
        # Canonical order so equal sets encode identically.
        items = sorted(value, key=lambda x: (repr(type(x)), repr(x)))
        out += _FROZENSET + struct.pack("<I", len(items))
        for item in items:
            _encode_v1_into(item, out)
    elif isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        out += _DICT + struct.pack("<I", len(items))
        for key, item in items:
            _encode_v1_into(key, out)
            _encode_v1_into(item, out)
    else:
        raise WireError(f"unsupported wire type {type(value).__name__}")


#: Exceptions the raw decoders may raise on malformed bytes; every
#: public decode entry point converts these to :class:`WireError`.
_DECODE_ERRORS = (
    struct.error,
    TypeError,  # e.g. an unhashable element inside a frozenset
    ValueError,
    IndexError,
    OverflowError,
    UnicodeDecodeError,
    RecursionError,
)


def decode_value(data: bytes) -> Any:
    """Decode one value frame; the whole buffer must be consumed.

    Accepts both wire versions (v2 frames carry the 0x01 magic).
    Malformed input of any shape raises :class:`WireError` —
    lower-level decoding errors never leak.
    """
    return WireCodec._DEFAULT.decode_value(data)


def _decode_v1_from(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise WireError("truncated value")
    tag = data[offset : offset + 1]
    offset += 1
    if tag == _NONE:
        return None, offset
    if tag == _TRUE:
        return True, offset
    if tag == _FALSE:
        return False, offset
    if tag == _FLOAT:
        return struct.unpack_from("<d", data, offset)[0], offset + 8
    if tag in (_INT, _STR, _BYTES):
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        payload = data[offset : offset + length]
        if len(payload) != length:
            raise WireError("truncated payload")
        offset += length
        if tag == _INT:
            return int(payload.decode("ascii")), offset
        if tag == _STR:
            return payload.decode("utf-8"), offset
        return bytes(payload), offset
    if tag in (_TUPLE, _LIST, _FROZENSET):
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        if count > len(data) - offset:  # each element is >= 1 byte
            raise WireError("container count exceeds remaining bytes")
        items = []
        for _ in range(count):
            item, offset = _decode_v1_from(data, offset)
            items.append(item)
        if tag == _TUPLE:
            return tuple(items), offset
        if tag == _LIST:
            return items, offset
        return frozenset(items), offset
    if tag == _DICT:
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        if count > len(data) - offset:
            raise WireError("container count exceeds remaining bytes")
        result = {}
        for _ in range(count):
            key, offset = _decode_v1_from(data, offset)
            value, offset = _decode_v1_from(data, offset)
            result[key] = value
        return result, offset
    raise WireError(f"unknown tag {tag!r}")


# --------------------------------------------------------------------------
# varint / zigzag primitives (v2)
# --------------------------------------------------------------------------


def _write_uvarint(value: int, out: bytearray) -> None:
    """LEB128 unsigned varint.  Unbounded precision, 7 bits per byte."""
    if value < 0:
        raise WireError("uvarint cannot encode a negative value")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _read_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise WireError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def _zigzag(value: int) -> int:
    return value * 2 if value >= 0 else -value * 2 - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


# --------------------------------------------------------------------------
# StringTable: per-cluster interning, "negotiated" at build time
# --------------------------------------------------------------------------


class StringTable:
    """Deterministic string interning table shared by a cluster.

    Built from the coordination analysis (method names, process names,
    sync-group ids) during cluster construction — the same inputs on
    every node yield the identical ``sorted(set(...))`` table, which is
    how the "negotiation" happens without any extra round trips.  Id 0
    is reserved as the inline escape: strings outside the table still
    encode (varint length + UTF-8), they just don't compress.
    """

    __slots__ = ("strings", "_ids")

    def __init__(self, strings: Iterable[str]):
        self.strings: tuple[str, ...] = tuple(sorted(set(strings)))
        self._ids = {s: i + 1 for i, s in enumerate(self.strings)}

    def __len__(self) -> int:
        return len(self.strings)

    def __contains__(self, string: str) -> bool:
        return string in self._ids

    def id_of(self, string: str) -> Optional[int]:
        """The interned id (>= 1), or None when not in the table."""
        return self._ids.get(string)

    def string_of(self, sid: int) -> str:
        if 1 <= sid <= len(self.strings):
            return self.strings[sid - 1]
        raise WireError(f"string id {sid} outside table of {len(self)}")


# --------------------------------------------------------------------------
# WireCodec: versioned encode/decode for values, packets, and batches
# --------------------------------------------------------------------------


class WireCodec:
    """Versioned codec for one cluster.

    ``version`` selects what *encoding* produces; *decoding* always
    accepts both versions (dispatch on the frame's first byte).  A v2
    codec without a :class:`StringTable` encodes every string inline;
    decoding an interned id without a table raises :class:`WireError`.
    """

    #: Module-level fallback used by the free functions below: encodes
    #: v1, decodes both versions (v2 limited to inline strings).
    _DEFAULT: "WireCodec"

    __slots__ = ("version", "table")

    def __init__(self, version: int = 1, table: Optional[StringTable] = None):
        if version not in (1, 2):
            raise ValueError(f"unsupported wire version {version}")
        self.version = version
        self.table = table

    @classmethod
    def for_cluster(cls, version: int, coordination,
                    processes: Iterable[str]) -> "WireCodec":
        """The cluster-wide codec: same inputs on every node, same table."""
        spec = coordination.spec
        strings = list(spec.update_names())
        strings += list(spec.query_names())
        strings += list(processes)
        strings += [group.gid for group in coordination.sync_groups()]
        strings += ["F", "S"]  # broadcast record tags
        return cls(version=version, table=StringTable(strings))

    # -- value frames ------------------------------------------------------

    def encode_value(self, value: Any) -> bytes:
        if self.version == 1:
            return encode_value(value)
        out = bytearray((_V2_VALUE,))
        self._encode_v2_into(value, out)
        return bytes(out)

    def decode_value(self, data: bytes) -> Any:
        try:
            if data[:1] == bytes((_V2_VALUE,)):
                value, offset = self._decode_v2_from(data, 1)
            else:
                value, offset = _decode_v1_from(data, 0)
        except WireError:
            raise
        except _DECODE_ERRORS as exc:
            raise WireError(f"malformed wire data: {exc}") from exc
        if offset != len(data):
            raise WireError(f"{len(data) - offset} trailing bytes")
        return value

    # -- call packets ------------------------------------------------------

    def encode_call_packet(self, call: Call, dep: DependencyMap) -> bytes:
        """A buffered record: the call plus its dependency arrays.

        The dependency map is shipped as (process, method, count)
        triples — the paper's variable-sized per-method arrays.  v2
        packs them as ``(proc_id, method_id, varint count)`` behind a
        fixed five-field header.
        """
        if self.version == 1:
            dep_triples = tuple(
                (proc, method, count)
                for (proc, method), count in sorted(dep.items())
            )
            return encode_value(
                (call.method, call.arg, call.origin, call.rid, dep_triples)
            )
        out = bytearray((_V2_PACKET,))
        self._encode_packet_body(call, dep, out)
        return bytes(out)

    def decode_call_packet(self, data: bytes) -> tuple[Call, DependencyMap]:
        try:
            if data[:1] == bytes((_V2_PACKET,)):
                entry, offset = self._decode_packet_body(data, 1)
                if offset != len(data):
                    raise WireError(f"{len(data) - offset} trailing bytes")
                return entry
        except WireError:
            raise
        except _DECODE_ERRORS as exc:
            raise WireError(f"malformed call packet: {exc}") from exc
        decoded = self.decode_value(data)
        if not isinstance(decoded, tuple) or len(decoded) != 5:
            raise WireError("malformed call packet")
        method, arg, origin, rid, dep_triples = decoded
        return Call(method, arg, origin, rid), _dep_from_triples(dep_triples)

    # -- batches -----------------------------------------------------------

    def encode_call_batch(
        self, entries: list[tuple[Call, DependencyMap]]
    ) -> bytes:
        """A batched record: several calls (with their dependency
        arrays) decided together by the leader and shipped in one
        remote write."""
        if self.version == 1:
            return encode_value(
                [
                    (
                        call.method,
                        call.arg,
                        call.origin,
                        call.rid,
                        tuple(
                            (proc, method, count)
                            for (proc, method), count in sorted(dep.items())
                        ),
                    )
                    for call, dep in entries
                ]
            )
        out = bytearray((_V2_BATCH,))
        _write_uvarint(len(entries), out)
        for call, dep in entries:
            self._encode_packet_body(call, dep, out)
        return bytes(out)

    def decode_call_batch(
        self, data: bytes
    ) -> list[tuple[Call, DependencyMap]]:
        """Decode either a batched record or a single call packet.

        Single packets decode to a one-element batch, so readers handle
        both shapes uniformly — in either wire version.
        """
        try:
            first = data[:1]
            if first == bytes((_V2_BATCH,)):
                count, offset = _read_uvarint(data, 1)
                if count > len(data) - offset:
                    raise WireError("batch count exceeds remaining bytes")
                entries = []
                for _ in range(count):
                    entry, offset = self._decode_packet_body(data, offset)
                    entries.append(entry)
                if offset != len(data):
                    raise WireError(f"{len(data) - offset} trailing bytes")
                return entries
            if first == bytes((_V2_PACKET,)):
                return [self.decode_call_packet(data)]
        except WireError:
            raise
        except _DECODE_ERRORS as exc:
            raise WireError(f"malformed batch packet: {exc}") from exc
        decoded = self.decode_value(data)
        if isinstance(decoded, tuple):
            decoded = [decoded]
        if not isinstance(decoded, list):
            raise WireError("malformed batch packet")
        entries = []
        for item in decoded:
            if not isinstance(item, tuple) or len(item) != 5:
                raise WireError("malformed batch entry")
            method, arg, origin, rid, dep_triples = item
            entries.append(
                (Call(method, arg, origin, rid),
                 _dep_from_triples(dep_triples))
            )
        return entries

    # -- v2 internals ------------------------------------------------------

    def _encode_str(self, string: str, out: bytearray) -> None:
        sid = self.table.id_of(string) if self.table is not None else None
        if sid is not None:
            _write_uvarint(sid, out)
        else:
            payload = string.encode("utf-8")
            out.append(0)  # id 0: inline escape
            _write_uvarint(len(payload), out)
            out += payload

    def _decode_str(self, data: bytes, offset: int) -> tuple[str, int]:
        sid, offset = _read_uvarint(data, offset)
        if sid == 0:
            length, offset = _read_uvarint(data, offset)
            payload = data[offset : offset + length]
            if len(payload) != length:
                raise WireError("truncated string payload")
            return payload.decode("utf-8"), offset + length
        if self.table is None:
            raise WireError(f"interned string id {sid} without a table")
        return self.table.string_of(sid), offset

    def _encode_packet_body(self, call: Call, dep: DependencyMap,
                            out: bytearray) -> None:
        # Fixed 5-tuple header: method, origin, rid, dep count, deps —
        # then the (self-delimiting) argument body.
        self._encode_str(call.method, out)
        self._encode_str(call.origin, out)
        _write_uvarint(_zigzag(call.rid), out)
        items = sorted(dep.items())
        _write_uvarint(len(items), out)
        for (proc, method), count in items:
            self._encode_str(proc, out)
            self._encode_str(method, out)
            _write_uvarint(count, out)
        self._encode_v2_into(call.arg, out)

    def _decode_packet_body(
        self, data: bytes, offset: int
    ) -> tuple[tuple[Call, DependencyMap], int]:
        method, offset = self._decode_str(data, offset)
        origin, offset = self._decode_str(data, offset)
        zz, offset = _read_uvarint(data, offset)
        rid = _unzigzag(zz)
        n_deps, offset = _read_uvarint(data, offset)
        if n_deps > len(data) - offset:  # each dep is >= 3 bytes
            raise WireError("dependency count exceeds remaining bytes")
        dep: DependencyMap = {}
        for _ in range(n_deps):
            proc, offset = self._decode_str(data, offset)
            dep_method, offset = self._decode_str(data, offset)
            count, offset = _read_uvarint(data, offset)
            dep[(proc, dep_method)] = count
        arg, offset = self._decode_v2_from(data, offset)
        return (Call(method, arg, origin, rid), dep), offset

    def _encode_v2_into(self, value: Any, out: bytearray) -> None:
        if value is None:
            out += _NONE
        elif value is True:
            out += _TRUE
        elif value is False:
            out += _FALSE
        elif isinstance(value, int):
            out += _INT
            _write_uvarint(_zigzag(value), out)
        elif isinstance(value, float):
            out += _FLOAT + struct.pack("<d", value)
        elif isinstance(value, str):
            out += _STR
            self._encode_str(value, out)
        elif isinstance(value, bytes):
            out += _BYTES
            _write_uvarint(len(value), out)
            out += value
        elif isinstance(value, tuple):
            out += _TUPLE
            _write_uvarint(len(value), out)
            for item in value:
                self._encode_v2_into(item, out)
        elif isinstance(value, list):
            out += _LIST
            _write_uvarint(len(value), out)
            for item in value:
                self._encode_v2_into(item, out)
        elif isinstance(value, frozenset):
            items = sorted(value, key=lambda x: (repr(type(x)), repr(x)))
            out += _FROZENSET
            _write_uvarint(len(items), out)
            for item in items:
                self._encode_v2_into(item, out)
        elif isinstance(value, dict):
            items = sorted(value.items(), key=lambda kv: repr(kv[0]))
            out += _DICT
            _write_uvarint(len(items), out)
            for key, item in items:
                self._encode_v2_into(key, out)
                self._encode_v2_into(item, out)
        else:
            raise WireError(f"unsupported wire type {type(value).__name__}")

    def _decode_v2_from(self, data: bytes, offset: int) -> tuple[Any, int]:
        if offset >= len(data):
            raise WireError("truncated value")
        tag = data[offset : offset + 1]
        offset += 1
        if tag == _NONE:
            return None, offset
        if tag == _TRUE:
            return True, offset
        if tag == _FALSE:
            return False, offset
        if tag == _FLOAT:
            return struct.unpack_from("<d", data, offset)[0], offset + 8
        if tag == _INT:
            zz, offset = _read_uvarint(data, offset)
            return _unzigzag(zz), offset
        if tag == _STR:
            return self._decode_str(data, offset)
        if tag == _BYTES:
            length, offset = _read_uvarint(data, offset)
            payload = data[offset : offset + length]
            if len(payload) != length:
                raise WireError("truncated payload")
            return bytes(payload), offset + length
        if tag in (_TUPLE, _LIST, _FROZENSET):
            count, offset = _read_uvarint(data, offset)
            if count > len(data) - offset:  # each element is >= 1 byte
                raise WireError("container count exceeds remaining bytes")
            items = []
            for _ in range(count):
                item, offset = self._decode_v2_from(data, offset)
                items.append(item)
            if tag == _TUPLE:
                return tuple(items), offset
            if tag == _LIST:
                return items, offset
            return frozenset(items), offset
        if tag == _DICT:
            count, offset = _read_uvarint(data, offset)
            if count > len(data) - offset:
                raise WireError("container count exceeds remaining bytes")
            result = {}
            for _ in range(count):
                key, offset = self._decode_v2_from(data, offset)
                value, offset = self._decode_v2_from(data, offset)
                result[key] = value
            return result, offset
        raise WireError(f"unknown tag {tag!r}")


WireCodec._DEFAULT = WireCodec(version=1)


def _dep_from_triples(dep_triples: Any) -> DependencyMap:
    """Structure-check decoded v1 dependency triples.

    Well-formed *values* in the wrong *shape* (a non-tuple triple, a
    two-element triple, an int where the array should be) must surface
    as :class:`WireError`, never a bare TypeError/ValueError.
    """
    if not isinstance(dep_triples, (tuple, list)):
        raise WireError("malformed dependency array")
    dep: DependencyMap = {}
    for triple in dep_triples:
        if not isinstance(triple, (tuple, list)) or len(triple) != 3:
            raise WireError("malformed dependency triple")
        proc, method, count = triple
        try:
            dep[(proc, method)] = count
        except TypeError as exc:  # unhashable key component
            raise WireError(f"malformed dependency key: {exc}") from exc
    return dep


# --------------------------------------------------------------------------
# Module-level convenience functions (v1 encode, version-agnostic decode)
# --------------------------------------------------------------------------


def encode_call_batch(entries: list[tuple[Call, DependencyMap]]) -> bytes:
    """v1 batch encode (see :meth:`WireCodec.encode_call_batch`)."""
    return WireCodec._DEFAULT.encode_call_batch(entries)


def decode_call_batch(data: bytes) -> list[tuple[Call, DependencyMap]]:
    """Version-agnostic batch decode (inline strings only for v2)."""
    return WireCodec._DEFAULT.decode_call_batch(data)


def encode_call_packet(call: Call, dep: DependencyMap) -> bytes:
    """v1 packet encode (see :meth:`WireCodec.encode_call_packet`)."""
    return WireCodec._DEFAULT.encode_call_packet(call, dep)


def decode_call_packet(data: bytes) -> tuple[Call, DependencyMap]:
    """Version-agnostic packet decode (inline strings only for v2)."""
    return WireCodec._DEFAULT.decode_call_packet(data)
