"""Flight recorder: causal event tracing over the probe seam.

PR 1 threaded a :class:`~repro.runtime.probe.RuntimeProbe` through all
four runtime layers but only backed it with flat counters.  This module
turns the seam into a real observability layer:

- :class:`TracingProbe` — a per-node probe recording sim-timestamped
  structured :class:`TraceEvent`\\ s into a bounded ring buffer: one
  *rule* event per concrete-semantics transition that became visible in
  σ (REDUCE / FREE / CONF / FREE_APP / CONF_APP / QUERY), begin/end
  *span* events for per-call lifecycle phases (invoke → propagate →
  decide → apply → … → visible, where "visible" is the rule instant),
  and *transfer* events for payload bytes crossing a ring.  Span pairs
  feed per-phase latency :class:`~repro.workload.Histogram`\\ s.
- :class:`TraceRecorder` — the cluster-side aggregator: hand its
  :meth:`~TraceRecorder.probe_factory` to
  :meth:`~repro.runtime.HambandCluster.build` and every node records
  into one globally sequenced trace.
- Exporters — newline-delimited JSON (:func:`export_jsonl`, one event
  per line, deterministic bytes for a deterministic run) and the Chrome
  ``trace_event`` format (:func:`export_chrome_trace`, loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev, with flow arrows
  linking each call's issue event to its applies — the causal chain).

The offline integrity/convergence analyzer over recorded traces lives
in :mod:`repro.runtime.checker`.

Probes must never change runtime behaviour: :class:`TracingProbe` adds
no simulated delays, allocates one small tuple-backed event per hook,
and drops the *oldest* events once the ring buffer is full (the
``dropped`` counter records how many — the offline checker refuses to
attest convergence for a truncated trace).
"""

from __future__ import annotations

import base64
import heapq
import itertools
import json
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Optional, TextIO

from ..workload.metrics import Histogram
from .probe import CountingProbe
from .wire import WireError, decode_value, encode_value

__all__ = [
    "ShardedRecorder",
    "TraceEvent",
    "TracingProbe",
    "TraceRecorder",
    "export_chrome_trace",
    "export_jsonl",
    "iter_jsonl",
    "load_jsonl",
]

#: Canonical lifecycle phase order (also the Chrome-export lane order).
PHASES = ("invoke", "propagate", "decide", "apply", "forward")

#: The concrete-semantics rule vocabulary recorded by rule events.
RULES = ("REDUCE", "FREE", "CONF", "FREE_APP", "CONF_APP", "QUERY")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded probe event.

    ``kind`` is ``"rule"`` (a transition became visible in σ at
    ``node``), ``"B"``/``"E"`` (a lifecycle span began/ended), or
    ``"xfer"`` (payload bytes crossed a ring).  ``name`` holds the rule
    name, the phase, or the ring label respectively.  ``(origin, rid)``
    is the call's globally unique identity (``rid == 0`` for queries);
    ``arg`` rides along on rule events so the offline checker can
    replay state.
    """

    seq: int
    t: float
    node: str
    kind: str
    name: str
    method: str
    origin: str
    rid: int
    gid: str = ""
    size: int = 0
    arg: Any = None

    def call_id(self) -> str:
        return f"{self.origin}#{self.rid}"


class TracingProbe(CountingProbe):
    """A :class:`CountingProbe` that additionally records a trace.

    Counters keep backing ``HambandNode.stats()`` exactly as before;
    on top, every span/trace hook appends a :class:`TraceEvent` to a
    bounded ring buffer and span ends feed per-phase
    :class:`~repro.workload.Histogram`\\ s.

    ``clock`` supplies timestamps (pass ``lambda: env.now``); ``seq``
    may be a shared :func:`itertools.count` so events from several
    nodes interleave into one total order (see :class:`TraceRecorder`).
    """

    def __init__(self, clock: Callable[[], float], node: str,
                 capacity: int = 65536,
                 seq: Optional[Iterable[int]] = None,
                 gid_of: Optional[Callable[[str], str]] = None):
        super().__init__()
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.clock = clock
        self.node = node
        self.capacity = capacity
        #: Raw event tuples ``(seq, t, kind, name, method, origin, rid,
        #: gid, size, arg)``; materialized into :class:`TraceEvent`\ s
        #: lazily by :attr:`events` so the hot path only pays one tuple
        #: allocation and a deque append per hook.
        self._buffer: deque[tuple] = deque(maxlen=capacity)
        self.dropped = 0
        #: Overflow episodes as ``[first_seq, last_seq, count]`` — the
        #: sequence range of evicted events, so consumers can localize
        #: the gap ("gap at seq N..M") instead of refusing the whole
        #: trace.  A ring that reached capacity drops continuously, so
        #: in practice this holds one episode per probe.
        self.drop_episodes: list[list[int]] = []
        #: Optional live tap: called with each TraceEvent as recorded
        #: (see :meth:`TraceRecorder.stream_to`).  Tap consumers see
        #: every event even when the bounded ring evicts old ones.
        self.sink: Optional[Callable[[TraceEvent], None]] = None
        self._seq = iter(seq) if seq is not None else itertools.count()
        #: Bound method, hoisted so the hot path skips the ``next()``
        #: builtin lookup (the probe fires on every span/apply/xfer).
        self._next_seq = self._seq.__next__
        self._gid_of = gid_of or (lambda method: "")
        #: Latency histograms per lifecycle phase, fed by span pairs.
        self.phases: dict[str, Histogram] = {}
        #: Open span start times, keyed by (phase, method, origin, rid).
        self._open: dict[tuple[str, str, str, int], float] = {}

    # -- recording -------------------------------------------------------

    def _record(self, kind: str, name: str, method: str, origin: str,
                rid: int, gid: str = "", size: int = 0,
                arg: Any = None) -> float:
        buffer = self._buffer
        if len(buffer) == self.capacity:
            self.dropped += 1
            evicted = buffer[0][0]
            episodes = self.drop_episodes
            if episodes:
                episodes[-1][1] = evicted
                episodes[-1][2] += 1
            else:
                episodes.append([evicted, evicted, 1])
        t = self.clock()
        seq = self._next_seq()
        buffer.append(
            (seq, t, kind, name, method, origin, rid, gid, size, arg)
        )
        if self.sink is not None:
            self.sink(TraceEvent(seq, t, self.node, kind, name, method,
                                 origin, rid, gid, size, arg))
        return t

    def span_begin(self, phase: str, method: str, origin: str,
                   rid: int) -> None:
        t = self._record("B", phase, method, origin, rid)
        self._open[(phase, method, origin, rid)] = t

    def span_end(self, phase: str, method: str, origin: str,
                 rid: int) -> None:
        t = self._record("E", phase, method, origin, rid)
        started = self._open.pop((phase, method, origin, rid), None)
        if started is not None:
            self.phases.setdefault(phase, Histogram()).add(t - started)

    def trace_apply(self, rule: str, method: str, origin: str, rid: int,
                    arg: Any = None) -> None:
        self._record(
            "rule", rule, method, origin, rid,
            gid=self._gid_of(method), arg=arg,
        )

    def trace_transfer(self, ring: str, method: str, origin: str,
                       rid: int, size: int) -> None:
        self._record("xfer", ring, method, origin, rid, size=size)

    def trace_fault(self, kind: str, target: str, detail: str) -> None:
        """An injected fault (kind/target/detail ride in name/origin/
        method so faults render inline with rule events)."""
        super().trace_fault(kind, target, detail)
        self._record("fault", kind, detail, target, 0)

    def trace_repair(self, ring: str, index: int, kind: str) -> None:
        """A detected corruption was repaired (kind/ring/index ride in
        name/origin/rid); pairs with the ``fault`` events so the
        offline checker and Chrome traces can correlate *injected* ⇒
        *detected* ⇒ *repaired*."""
        super().trace_repair(ring, index, kind)
        self._record("repair", kind, ring, self.node, index)

    def member_event(self, event: str, node: str, detail: str = "") -> None:
        """A membership change (``member_join``/``member_leave``) or a
        completed state transfer (``state_xfer``) became visible.  The
        event name rides in ``name``, the subject node in ``origin``,
        and the detail (epoch / transfer reason) in ``method`` — so the
        trace checkers account for mid-run membership."""
        super().member_event(event, node, detail)
        self._record("member", event, detail, node, 0)

    # -- reporting -------------------------------------------------------

    @property
    def events(self) -> list[TraceEvent]:
        """The buffered events, materialized (oldest first)."""
        return list(self.iter_events())

    def iter_events(self) -> "Iterable[TraceEvent]":
        """Lazily materialize the buffered events, oldest first.

        Snapshots the raw ring up front (cheap: tuple refs), so the
        probe may keep recording while a consumer iterates.
        """
        node = self.node
        for (seq, t, kind, name, method, origin, rid, gid, size,
             arg) in tuple(self._buffer):
            yield TraceEvent(seq, t, node, kind, name, method, origin,
                             rid, gid, size, arg)

    def snapshot(self) -> dict[str, Any]:
        snapshot = super().snapshot()
        snapshot["trace"] = {
            "events": len(self._buffer),
            "dropped": self.dropped,
            "phases": {
                phase: histogram.summary()
                for phase, histogram in sorted(self.phases.items())
            },
        }
        return snapshot


class TraceRecorder:
    """Cluster-wide flight recorder built from per-node tracing probes.

    >>> from repro.sim import Environment
    >>> from repro.datatypes import gset_spec
    >>> from repro.runtime import HambandCluster, TraceRecorder
    >>> env = Environment()
    >>> recorder = TraceRecorder(env)
    >>> cluster = HambandCluster.build(
    ...     env, gset_spec(), n_nodes=3,
    ...     probe_factory=recorder.probe_factory)
    >>> recorder.attach(cluster.coordination)

    Each probe draws sequence numbers from one shared counter, so
    :meth:`events` is a single total order consistent with both sim
    time and per-node program order.
    """

    def __init__(self, env, capacity: int = 65536,
                 coordination: Any = None,
                 seq: Optional[Iterable[int]] = None):
        self.env = env
        self.capacity = capacity
        self.probes: dict[str, TracingProbe] = {}
        self._sink: Optional[Callable[[TraceEvent], None]] = None
        #: ``seq`` may be an externally shared counter so several
        #: recorders (one per shard) interleave into one total order.
        self._seq = iter(seq) if seq is not None else itertools.count()
        self._gid_cache: dict[str, str] = {}
        self.coordination = None
        if coordination is not None:
            self.attach(coordination)

    def attach(self, coordination: Any) -> "TraceRecorder":
        """Teach the recorder the object's sync groups (for gid tags)."""
        self.coordination = coordination
        self._gid_cache.clear()
        return self

    def _gid_of(self, method: str) -> str:
        gid = self._gid_cache.get(method)
        if gid is None:
            gid = ""
            if self.coordination is not None:
                try:
                    group = self.coordination.sync_group(method)
                except Exception:  # queries / unknown methods
                    group = None
                if group is not None:
                    gid = group.gid
            self._gid_cache[method] = gid
        return gid

    def probe_factory(self, name: str) -> TracingProbe:
        """Build (and remember) the tracing probe for node ``name``."""
        probe = TracingProbe(
            clock=lambda: self.env.now,
            node=name,
            capacity=self.capacity,
            seq=self._seq,
            gid_of=self._gid_of,
        )
        probe.sink = self._sink
        self.probes[name] = probe
        return probe

    def stream_to(self, sink: Callable[[TraceEvent], None],
                  replay: bool = True) -> "TraceRecorder":
        """Tap the live event stream: ``sink`` is called with every
        event as it is recorded, on every current and future probe.

        With ``replay`` (the default), already-buffered events are
        delivered first in global order, so a consumer attached
        mid-run still sees a seq-contiguous stream.  Tap consumers are
        independent of the bounded ring — a
        :class:`~repro.runtime.stream_checker.StreamingChecker` fed
        this way verifies the *complete* run even when the ring keeps
        only the most recent events.
        """
        if replay:
            for event in self.iter_events():
                sink(event)
        self._sink = sink
        for probe in self.probes.values():
            probe.sink = sink
        return self

    # -- views -----------------------------------------------------------

    def events(self) -> list[TraceEvent]:
        """All nodes' events merged into the global total order."""
        return list(self.iter_events())

    def iter_events(self) -> Iterable[TraceEvent]:
        """Stream all nodes' events in the global total order without
        materializing the merged trace (each probe's ring is already
        seq-sorted, so this is a lazy k-way merge)."""
        return heapq.merge(
            *(probe.iter_events() for probe in self.probes.values()),
            key=lambda event: event.seq,
        )

    def dropped(self) -> int:
        return sum(probe.dropped for probe in self.probes.values())

    def drop_gaps(self) -> list[tuple[int, int, int]]:
        """Ring-overflow gaps as ``(first_seq, last_seq, count)``,
        merged across probes (nodes share one seq counter, so episodes
        from different probes may interleave)."""
        episodes = [
            episode
            for probe in self.probes.values()
            for episode in probe.drop_episodes
        ]
        return merge_gap_ranges(episodes)

    def nodes(self) -> list[str]:
        return sorted(self.probes)

    def phase_histograms(self) -> dict[str, Histogram]:
        """Per-phase latency histograms merged across all nodes."""
        merged: dict[str, Histogram] = {}
        for probe in self.probes.values():
            for phase, histogram in probe.phases.items():
                merged.setdefault(phase, Histogram()).merge(histogram)
        return merged

    # -- exports ---------------------------------------------------------

    def export_jsonl(self, path: str) -> int:
        """Stream the merged trace as JSON lines; returns the count.

        Events are written as the lazy merge yields them — the full
        trace is never materialized — and the bytes are identical to
        the historical whole-trace exporter's.
        """
        with open(path, "w", encoding="utf-8") as fp:
            return export_jsonl(self.iter_events(), fp,
                                dropped=self.dropped(),
                                nodes=self.nodes(),
                                gaps=self.drop_gaps())

    def export_chrome(self, path: str) -> int:
        """Write a ``chrome://tracing`` / Perfetto JSON file."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(chrome_trace_dict(events), fp)
        return len(events)


class ShardedRecorder:
    """Flight recorder for a :class:`~repro.runtime.ShardedCluster`.

    One :class:`TraceRecorder` per shard — every shard names its nodes
    ``p1..pn``, so a single recorder's per-node probe table would
    collide — all drawing sequence numbers from ONE shared counter, so
    the merged view is still a single total order across the topology.

    On top of the per-shard streams it records ``txn`` events emitted
    by the cross-shard transaction coordinator: BEGIN / COMMIT / ABORT
    instants carrying the transaction's classification and the
    identities of the constituent calls it actually issued
    (``(shard, method, origin, rid)`` tuples) — the input of the
    offline cross-shard atomicity check
    (:class:`~repro.runtime.checker.ShardedTraceChecker`).
    """

    def __init__(self, env, n_shards: int, capacity: int = 65536):
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        self.env = env
        self.capacity = capacity
        self._seq = itertools.count()
        self.shard_recorders = [
            TraceRecorder(env, capacity=capacity, seq=self._seq)
            for _ in range(n_shards)
        ]
        self._txn_events: deque[TraceEvent] = deque(maxlen=capacity)
        self._txn_dropped = 0
        self._txn_episodes: list[list[int]] = []

    @property
    def n_shards(self) -> int:
        return len(self.shard_recorders)

    def attach(self, coordination: Any) -> "ShardedRecorder":
        for recorder in self.shard_recorders:
            recorder.attach(coordination)
        return self

    def probe_factory_for(self, shard: int) -> Callable[[str], TracingProbe]:
        """The per-node probe factory for one shard (hand to
        :meth:`~repro.runtime.ShardedCluster.build` via
        ``shard_probe_factory``)."""
        return self.shard_recorders[shard].probe_factory

    # -- txn events ------------------------------------------------------

    def record_txn(self, name: str, txn_id: int, classification: str,
                   shards: Iterable[int],
                   issued: Iterable[tuple] = ()) -> None:
        """Record one transaction lifecycle instant.

        ``name`` is ``BEGIN`` / ``COMMIT`` / ``ABORT``;
        ``classification`` (``commuting`` / ``locked``) rides in the
        event's method field, the participating shards in ``gid``, and
        the issued call identities in ``arg``.
        """
        if len(self._txn_events) == self._txn_events.maxlen:
            self._txn_dropped += 1
            evicted = self._txn_events[0].seq
            if self._txn_episodes:
                self._txn_episodes[-1][1] = evicted
                self._txn_episodes[-1][2] += 1
            else:
                self._txn_episodes.append([evicted, evicted, 1])
        self._txn_events.append(TraceEvent(
            seq=next(self._seq),
            t=self.env.now,
            node="txn",
            kind="txn",
            name=name,
            method=classification,
            origin="txn",
            rid=txn_id,
            gid="+".join(f"s{index}" for index in sorted(shards)),
            arg=tuple(tuple(identity) for identity in issued),
        ))

    # -- views -----------------------------------------------------------

    def shard_events(self) -> dict[int, list[TraceEvent]]:
        """Per-shard event streams with unprefixed node names (the
        per-shard checker input)."""
        return {
            index: recorder.events()
            for index, recorder in enumerate(self.shard_recorders)
        }

    def txn_events(self) -> list[TraceEvent]:
        return sorted(self._txn_events, key=lambda event: event.seq)

    def events(self) -> list[TraceEvent]:
        """All shards' events merged, nodes labelled ``s<i>/<node>``,
        txn instants interleaved — one exportable total order."""
        merged = [
            replace(event, node=f"s{index}/{event.node}")
            for index, recorder in enumerate(self.shard_recorders)
            for event in recorder.events()
        ]
        merged.extend(self._txn_events)
        merged.sort(key=lambda event: event.seq)
        return merged

    def dropped(self) -> int:
        return self._txn_dropped + sum(
            recorder.dropped() for recorder in self.shard_recorders
        )

    def drop_gaps(self) -> list[tuple[int, int, int]]:
        """Ring-overflow gaps across every shard plus the txn ring."""
        episodes = [list(self._txn_episodes)]
        episodes += [
            [list(gap) for gap in recorder.drop_gaps()]
            for recorder in self.shard_recorders
        ]
        return merge_gap_ranges(
            [gap for group in episodes for gap in group]
        )

    def nodes(self) -> list[str]:
        return [
            f"s{index}/{name}"
            for index, recorder in enumerate(self.shard_recorders)
            for name in recorder.nodes()
        ]

    def phase_histograms(self) -> dict[str, Histogram]:
        """Phase latencies merged across every shard."""
        merged: dict[str, Histogram] = {}
        for recorder in self.shard_recorders:
            for phase, histogram in recorder.phase_histograms().items():
                merged.setdefault(phase, Histogram()).merge(histogram)
        return merged

    def phase_histograms_by_shard(self) -> dict[str, dict[str, Histogram]]:
        """``{"s0": {...}, ...}`` — one phase table per shard, so
        multi-shard reports don't interleave into one misleading table."""
        return {
            f"s{index}": recorder.phase_histograms()
            for index, recorder in enumerate(self.shard_recorders)
            if recorder.probes
        }

    # -- exports ---------------------------------------------------------

    def export_jsonl(self, path: str) -> int:
        events = self.events()
        with open(path, "w", encoding="utf-8") as fp:
            return export_jsonl(events, fp, dropped=self.dropped(),
                                nodes=self.nodes(),
                                gaps=self.drop_gaps())

    def export_chrome(self, path: str) -> int:
        events = self.events()
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(chrome_trace_dict(events), fp)
        return len(events)


# -- serialization ---------------------------------------------------------


def merge_gap_ranges(episodes: Iterable[Iterable[int]]
                     ) -> list[tuple[int, int, int]]:
    """Merge overlapping/adjacent drop episodes ``[first, last, count]``
    into sorted disjoint ``(first, last, count)`` ranges."""
    ranges = sorted(
        (int(e[0]), int(e[1]), int(e[2]) if len(list(e)) > 2 else 0)
        for e in (list(e) for e in episodes)
    )
    merged: list[list[int]] = []
    for first, last, count in ranges:
        if merged and first <= merged[-1][1] + 1:
            merged[-1][1] = max(merged[-1][1], last)
            merged[-1][2] += count
        else:
            merged.append([first, last, count])
    return [tuple(gap) for gap in merged]


def _encode_arg(arg: Any) -> tuple[str, str]:
    """Encode a rule event's argument for JSONL.

    Uses the runtime wire codec (exact round-trip for every value shape
    the bundled data types use) with a ``repr`` fallback for anything
    exotic a custom spec might carry.
    """
    try:
        return "wire", base64.b64encode(encode_value(arg)).decode("ascii")
    except WireError:
        return "repr", repr(arg)


def _decode_arg(scheme: str, payload: str) -> Any:
    if scheme == "wire":
        return decode_value(base64.b64decode(payload.encode("ascii")))
    return payload  # repr fallback: opaque, not replayable exactly


def event_to_dict(event: TraceEvent) -> dict[str, Any]:
    record: dict[str, Any] = {
        "seq": event.seq,
        "t": event.t,
        "node": event.node,
        "kind": event.kind,
        "name": event.name,
        "method": event.method,
        "origin": event.origin,
        "rid": event.rid,
    }
    if event.gid:
        record["gid"] = event.gid
    if event.size:
        record["size"] = event.size
    if event.kind in ("rule", "txn"):
        scheme, payload = _encode_arg(event.arg)
        record["arg_kind"] = scheme
        record["arg"] = payload
    return record


def event_from_dict(record: dict[str, Any]) -> TraceEvent:
    arg = None
    if record.get("kind") in ("rule", "txn") and "arg" in record:
        arg = _decode_arg(record.get("arg_kind", "wire"), record["arg"])
    return TraceEvent(
        seq=record["seq"],
        t=record["t"],
        node=record["node"],
        kind=record["kind"],
        name=record["name"],
        method=record["method"],
        origin=record["origin"],
        rid=record["rid"],
        gid=record.get("gid", ""),
        size=record.get("size", 0),
        arg=arg,
    )


def export_jsonl(events: Iterable[TraceEvent], fp: TextIO,
                 dropped: int = 0,
                 nodes: Optional[list[str]] = None,
                 gaps: Optional[Iterable[Iterable[int]]] = None) -> int:
    """Write one meta line plus one JSON line per event; returns the
    event count.

    ``events`` may be any iterable (e.g. the recorder's lazy merge) —
    it is consumed once, streaming.  Output bytes are a pure function
    of the events (sorted keys, fixed separators), so identical runs
    export identical files — the trace determinism tests pin this.
    ``gaps`` records ring-overflow seq ranges; a lossless trace's meta
    line carries no ``gaps`` key, keeping historical bytes intact.
    """
    if not nodes:
        events = list(events)
        nodes = sorted({event.node for event in events})
    meta: dict[str, Any] = {
        "kind": "meta",
        "version": 1,
        "dropped": dropped,
        "nodes": nodes,
    }
    gap_list = [list(gap) for gap in gaps] if gaps else []
    if gap_list:
        meta["gaps"] = gap_list
    fp.write(json.dumps(meta, sort_keys=True, separators=(",", ":")))
    fp.write("\n")
    count = 0
    for event in events:
        fp.write(
            json.dumps(
                event_to_dict(event), sort_keys=True, separators=(",", ":")
            )
        )
        fp.write("\n")
        count += 1
    return count


@dataclass
class LoadedTrace:
    """A trace read back from a JSONL export."""

    events: list[TraceEvent] = field(default_factory=list)
    dropped: int = 0
    nodes: list[str] = field(default_factory=list)
    #: Ring-overflow seq ranges ``(first, last, count)`` from the meta
    #: line (empty for lossless traces).
    gaps: list[tuple[int, ...]] = field(default_factory=list)


def load_jsonl(path: str) -> LoadedTrace:
    trace = LoadedTrace()
    for record in iter_jsonl(path):
        if isinstance(record, dict):
            trace.dropped = record.get("dropped", 0)
            trace.nodes = list(record.get("nodes", []))
            trace.gaps = [tuple(gap) for gap in record.get("gaps", [])]
            continue
        trace.events.append(record)
    if not trace.nodes:
        trace.nodes = sorted({event.node for event in trace.events})
    return trace


def iter_jsonl(path: str) -> "Iterable[Any]":
    """Stream a JSONL trace one record at a time with O(1) memory:
    yields the raw meta dict(s) first (as written), then each
    :class:`TraceEvent` — the input of
    :meth:`~repro.runtime.stream_checker.StreamingChecker.check_jsonl`.
    """
    with open(path, encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "meta":
                yield record
            else:
                yield event_from_dict(record)


# -- Chrome trace_event export ---------------------------------------------


def chrome_trace_dict(events: Iterable[TraceEvent]) -> dict[str, Any]:
    """The merged trace in Chrome ``trace_event`` JSON object format.

    - each node becomes one *process* (named via metadata events),
    - lifecycle spans become complete (``X``) events on per-phase
      thread lanes, paired B/E at export time,
    - rule transitions and ring transfers become instant (``i``)
      events, with flow arrows (``s``/``t``) linking every call's issue
      event (REDUCE/FREE/CONF) to its applies on other nodes — load the
      file in ``chrome://tracing`` or Perfetto and the causal chains
      render as arrows across processes.
    """
    pids: dict[str, int] = {}
    out: list[dict[str, Any]] = []

    def pid_of(node: str) -> int:
        pid = pids.get(node)
        if pid is None:
            pid = len(pids) + 1
            pids[node] = pid
            out.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": node},
            })
            for index, phase in enumerate(PHASES):
                out.append({
                    "ph": "M", "name": "thread_name", "pid": pid,
                    "tid": index + 1, "args": {"name": phase},
                })
            out.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": len(PHASES) + 1, "args": {"name": "events"},
            })
        return pid

    def tid_of(phase: str) -> int:
        return PHASES.index(phase) + 1 if phase in PHASES else len(PHASES) + 1

    open_spans: dict[tuple[str, str, str, str, int], list[float]] = {}
    flow_started: set[str] = set()
    for event in sorted(events, key=lambda e: e.seq):
        pid = pid_of(event.node)
        label = f"{event.method}@{event.call_id()}"
        if event.kind == "B":
            open_spans.setdefault(
                (event.node, event.name, event.method, event.origin,
                 event.rid), []
            ).append(event.t)
        elif event.kind == "E":
            key = (event.node, event.name, event.method, event.origin,
                   event.rid)
            stack = open_spans.get(key)
            if stack:
                start = stack.pop()
                out.append({
                    "ph": "X", "name": f"{event.name}:{event.method}",
                    "cat": "span", "pid": pid, "tid": tid_of(event.name),
                    "ts": start, "dur": max(event.t - start, 0.0),
                    "args": {"call": label},
                })
        elif event.kind == "rule":
            instant = {
                "ph": "i", "name": event.name, "cat": "rule",
                "pid": pid, "tid": len(PHASES) + 1, "ts": event.t,
                "s": "t",
                "args": {"call": label, "gid": event.gid},
            }
            out.append(instant)
            if event.rid:  # queries (rid 0) have no causal chain
                flow = {
                    "cat": "causal", "name": event.method,
                    "id": event.call_id(), "pid": pid,
                    "tid": len(PHASES) + 1, "ts": event.t,
                }
                if event.call_id() not in flow_started:
                    flow_started.add(event.call_id())
                    out.append({"ph": "s", **flow})
                else:
                    out.append({"ph": "t", **flow})
        elif event.kind == "txn":
            out.append({
                "ph": "i", "name": f"TXN:{event.name}", "cat": "txn",
                "pid": pid, "tid": len(PHASES) + 1, "ts": event.t,
                "s": "g",  # global scope: a txn spans shards
                "args": {
                    "txn": event.rid, "classification": event.method,
                    "shards": event.gid,
                },
            })
        elif event.kind == "member":
            out.append({
                "ph": "i", "name": f"MEMBER:{event.name}", "cat": "member",
                "pid": pid, "tid": len(PHASES) + 1, "ts": event.t,
                "s": "g",  # global scope: membership spans the cluster
                "args": {"member": event.origin, "detail": event.method},
            })
        elif event.kind == "fault":
            out.append({
                "ph": "i", "name": f"FAULT:{event.name}", "cat": "fault",
                "pid": pid, "tid": len(PHASES) + 1, "ts": event.t,
                "s": "g",  # global scope: draw across the whole track
                "args": {"target": event.origin, "detail": event.method},
            })
        elif event.kind == "repair":
            out.append({
                "ph": "i", "name": f"REPAIR:{event.name}", "cat": "repair",
                "pid": pid, "tid": len(PHASES) + 1, "ts": event.t,
                "s": "p",  # process scope: one node healed itself
                "args": {"ring": event.method, "index": event.rid},
            })
        elif event.kind == "xfer":
            out.append({
                "ph": "i", "name": event.name, "cat": "xfer",
                "pid": pid, "tid": len(PHASES) + 1, "ts": event.t,
                "s": "t",
                "args": {"call": label, "bytes": event.size},
            })
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def export_chrome_trace(events: Iterable[TraceEvent], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(chrome_trace_dict(events), fp)
