"""Summary slots for reducible methods (paper §2 "Reducible methods").

Each process stores, per summarization group and per process, a single
slot holding that process's current summary call and its applied
counts.  The owner of the summary (the issuing process) overwrites the
slot locally and at every peer with one RDMA write each.

Slot layout (seqlock pattern): an 8-byte sequence number, a 4-byte
payload length, the payload, and the same sequence number again in the
slot's final 8 bytes.  A reader that observes mismatched sequence
numbers is seeing a write in flight and retries — the moral equivalent
of the ring buffers' canary byte for an overwrite-in-place slot.
"""

from __future__ import annotations

import struct
from typing import Optional

from ..core import Call
from ..rdma import MemoryRegion
from .wire import WireCodec, WireError, decode_value, encode_value

__all__ = ["SummarySlot", "SummaryValue", "render_summary", "slot_size_for"]

_HEADER = 12  # 8-byte seq + 4-byte length
_TRAILER = 8

#: What a slot stores: the summary call and the per-method applied
#: counts of the owning process within this summarization group.
SummaryValue = tuple[Call, dict[str, int]]


def slot_size_for(max_payload: int) -> int:
    return _HEADER + max_payload + _TRAILER


def render_summary(seq: int, call: Call, counts: dict[str, int],
                   slot_size: int,
                   codec: Optional[WireCodec] = None) -> bytes:
    """Render the used prefix of the slot for one RDMA write.

    The trailer sequence number sits immediately after the payload, so
    the remote write ships only record-sized bytes rather than the full
    reserved slot.  ``codec`` selects the wire version of the payload
    (v1 without one); readers auto-detect either version.
    """
    encode = codec.encode_value if codec is not None else encode_value
    payload = encode((call.method, call.arg, call.origin, call.rid,
                      counts))
    used = _HEADER + len(payload) + _TRAILER
    if used > slot_size:
        raise ValueError(
            f"summary payload of {len(payload)} bytes exceeds slot size "
            f"{slot_size}"
        )
    slot = bytearray(used)
    struct.pack_into("<Q", slot, 0, seq)
    struct.pack_into("<I", slot, 8, len(payload))
    slot[_HEADER : _HEADER + len(payload)] = payload
    struct.pack_into("<Q", slot, used - _TRAILER, seq)
    return bytes(slot)


def current_record_bytes(region) -> bytes:
    """The used prefix of a summary region: header + payload + trailer.

    Used when a broadcast retry re-renders the slot's *current* bytes —
    shipping record-sized data, never the whole reserved region.
    """
    (length,) = struct.unpack_from("<I", region.data, 8)
    used = _HEADER + length + _TRAILER
    if used > region.size:
        used = region.size
    return bytes(region.data[:used])


class SummarySlot:
    """Reader view over one summary slot region."""

    def __init__(self, region: MemoryRegion, offset: int, slot_size: int,
                 codec: Optional[WireCodec] = None):
        self.region = region
        self.offset = offset
        self.slot_size = slot_size
        #: Needed to resolve interned string ids in v2 payloads; the
        #: wire version itself is auto-detected from the payload bytes.
        self.codec = codec
        self._cache_seq: Optional[int] = None
        self._cache_value: Optional[SummaryValue] = None

    def read(self) -> Optional[SummaryValue]:
        """Current summary, or None while the slot is empty/in flight.

        Decodes are cached by sequence number: the hot path (applied-
        count checks in the buffer traversal loops) re-reads slots far
        more often than they change.
        """
        raw = self.region.read(self.offset, self.slot_size)
        (seq1,) = struct.unpack_from("<Q", raw, 0)
        if seq1 == 0:
            return None
        (length,) = struct.unpack_from("<I", raw, 8)
        if _HEADER + length + _TRAILER > self.slot_size:
            return None  # garbage length: treat as in-flight
        (seq2,) = struct.unpack_from("<Q", raw, _HEADER + length)
        if seq1 != seq2:
            return None
        if seq1 == self._cache_seq:
            return self._cache_value
        decode = (
            self.codec.decode_value if self.codec is not None
            else decode_value
        )
        try:
            method, arg, origin, rid, counts = decode(
                bytes(raw[_HEADER : _HEADER + length])
            )
        except (WireError, ValueError, TypeError):
            # A corrupted payload behind an intact seqlock (the seqlock
            # only catches *incomplete* overwrites, like the rings'
            # canary byte): treat as in flight — the owner's next
            # summary write replaces the slot wholesale.
            return None
        value = (Call(method, arg, origin, rid), counts)
        self._cache_seq = seq1
        self._cache_value = value
        return value

    def applied_count(self, method: str) -> int:
        value = self.read()
        if value is None:
            return 0
        return value[1].get(method, 0)
