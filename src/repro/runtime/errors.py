"""Request-path error types shared by every runtime layer.

These live in their own leaf module so the four runtime layers
(:mod:`.transport`, :mod:`.applier`, :mod:`.conflict`, :mod:`.control`)
can raise them without importing the :class:`~repro.runtime.HambandNode`
façade (which imports the layers — a cycle otherwise).  The façade
re-exports them, so ``from repro.runtime.node import SubmitError`` and
``from repro.runtime import SubmitError`` both keep working.
"""

from __future__ import annotations

__all__ = ["ImpermissibleError", "NotLeaderError", "SubmitError"]


class SubmitError(Exception):
    """A request this node cannot serve."""


class NotLeaderError(SubmitError):
    """Conflicting call submitted to a non-leader; redirect to ``leader``."""

    def __init__(self, method: str, leader: str):
        super().__init__(f"{method} must go to leader {leader}")
        self.leader = leader


class ImpermissibleError(SubmitError):
    """The call violates the invariant and was rejected (or timed out
    waiting for its dependencies to arrive)."""
