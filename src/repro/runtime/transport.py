"""Layer 1 — one-sided ring transport (paper §4 "Meta-data").

:class:`RingTransport` owns everything about moving buffered-call
records between nodes over one-sided writes:

- registration of every Hamband memory region at this node (F ring per
  peer, L ring per synchronization group, summary slot per
  (summarization group, process), and the tiny flow-control ack slots),
- the F-ring reader per peer and the writer mirror toward each peer's
  copy of *our* F ring,
- the L-ring reader per synchronization group (the leader-side L
  writers live inside Mu, which shares the ring layout),
- writer backpressure against reader acks (`render_with_backpressure`)
  and the reader-side ack flush (`flush_acks` / `post_ack`),
- the generic drain loop over a ring (`drain`), which delegates all
  application *decisions* (dedup, dependency checks, the apply itself)
  to an apply sink — the transport never touches σ or A.

The sink protocol (duck-typed; :class:`~repro.runtime.applier.ApplyEngine`
implements it):

- ``sink.has_seen(key) -> bool`` — drop duplicates,
- ``sink.dep_ok(dep) -> bool`` — may the head record apply yet?
- ``sink.apply(call, rule)`` — a generator applying the call (CPU cost
  included).
"""

from __future__ import annotations

from typing import Callable, Optional

from collections import deque

from ..core import Coordination
from ..rdma import RdmaNode, WcStatus
from ..sim import SeedSequence
from .config import (
    RuntimeConfig,
    f_ack_region,
    f_region,
    l_ack_region,
    l_region,
    s_region,
)
from .probe import RuntimeProbe
from .ringbuffer import (
    RingError,
    RingReader,
    RingWriter,
    classify_corruption,
    parse_record,
    scan_frontier,
)
from .summary import slot_size_for
from .wire import WireCodec, WireError

__all__ = ["RingTransport"]

#: Upper bound on records parsed per drain sweep (one region read).
_DRAIN_RUN = 64


class RingTransport:
    """Ring-buffer data plane of one node: regions, readers, writers."""

    def __init__(self, rnode: RdmaNode, coordination: Coordination,
                 processes: list[str], config: RuntimeConfig,
                 probe: Optional[RuntimeProbe] = None,
                 codec: Optional[WireCodec] = None):
        self.rnode = rnode
        self.env = rnode.env
        self.name = rnode.name
        self.coordination = coordination
        self.processes = sorted(processes)
        self.peers = [p for p in self.processes if p != self.name]
        self.config = config
        self.probe = probe or RuntimeProbe()
        self.codec = codec or WireCodec(config.wire_version)
        #: Flow-control re-arm baselines: peers whose backpressure fell
        #: back to ring-sizing mode and are being watched for fresh
        #: acks after a heal/rejoin resync (see rearm_flow_control).
        self._rearm_baseline: dict[str, int] = {}
        #: Peer-health latency tracker (phi mode only; wired by the
        #: node façade).  Successful one-sided ops feed it, and the
        #: hedged-read path ranks fallback sources by its EWMA.
        self.health = None
        #: Retry-jitter substream: deterministic per (seed, node), and
        #: only ever drawn from in phi mode so fixed-mode schedules are
        #: byte-identical to the seed.
        self._retry_rng = SeedSequence(config.seed).derive(
            f"retry:{self.name}"
        )
        #: Recent successful repair/fetch read latencies — the adaptive
        #: hedge delay is their p99.
        self._read_lat: deque = deque(maxlen=64)
        self._register_regions()
        self._init_rings()

    # -- setup -----------------------------------------------------------

    def _register_regions(self) -> None:
        cfg = self.config
        for peer in self.peers:
            self.rnode.register(
                f_region(peer), cfg.ring_slots * cfg.slot_size
            )
        #: Our own F ring mirror: the same records we fan out to peers,
        #: kept locally (and remotely readable) so any node can repair a
        #: hole in its copy of our ring by reading the authoritative
        #: source — the rejoin/catch-up path reads these.
        self.rnode.register(
            f_region(self.name), cfg.ring_slots * cfg.slot_size
        )
        for group in self.coordination.sync_groups():
            self.rnode.register(
                l_region(group.gid), cfg.ring_slots * cfg.slot_size
            )
        for reader in self.peers:
            self.rnode.register(f_ack_region(reader), 8)
            for group in self.coordination.sync_groups():
                self.rnode.register(l_ack_region(group.gid, reader), 8)
        summary_size = slot_size_for(cfg.summary_payload)
        for summarizer in self.coordination.spec.summarizers:
            for owner in self.processes:
                self.rnode.register(
                    s_region(summarizer.group, owner), summary_size
                )

    def _init_rings(self) -> None:
        cfg = self.config
        self.f_readers = {
            peer: RingReader(
                self.rnode.regions[f_region(peer)],
                cfg.ring_slots,
                cfg.slot_size,
            )
            for peer in self.peers
        }
        #: Our writer state toward each peer's copy of our F ring.
        self.f_writers = {
            peer: RingWriter(cfg.ring_slots, cfg.slot_size,
                             integrity=cfg.ring_integrity)
            for peer in self.peers
        }
        if cfg.ack_every:
            for writer in self.f_writers.values():
                writer.reader_acked = 0
        #: Writer state for the local authoritative mirror of our own F
        #: ring (never throttled: it is a plain local memory write).
        self.f_mirror = RingWriter(cfg.ring_slots, cfg.slot_size,
                                   integrity=cfg.ring_integrity)
        #: Consecutive empty sweeps per F ring (hole-detection input).
        self._f_misses: dict[str, int] = {}
        #: Last ring-head count acknowledged back to each writer.
        self._acked: dict[str, int] = {}
        self.l_readers = {
            group.gid: RingReader(
                self.rnode.regions[l_region(group.gid)],
                cfg.ring_slots,
                cfg.slot_size,
            )
            for group in self.coordination.sync_groups()
        }

    # -- membership ------------------------------------------------------

    def add_peer(self, peer: str) -> None:
        """Rewire the data plane for a newly joined ``peer``.

        Registers its F ring copy, ack slots, and summary slots, then
        wires reader/writer state.  The new F writer starts at the
        MIRROR's tail: record bytes at one absolute index are identical
        across copies, and the joiner's state transfer bulk-installs the
        committed prefix — the writer only ships records from here on.
        Flow control starts in ring-sizing mode, armed at the joiner's
        first observed ack (a fresh reader has acked nothing yet, and a
        mirror tail past one lap would wedge a zero-armed writer).
        """
        cfg = self.config
        if peer == self.name or peer in self.f_readers:
            return
        self.rnode.register(
            f_region(peer), cfg.ring_slots * cfg.slot_size
        )
        self.rnode.register(f_ack_region(peer), 8)
        for group in self.coordination.sync_groups():
            self.rnode.register(l_ack_region(group.gid, peer), 8)
        summary_size = slot_size_for(cfg.summary_payload)
        for summarizer in self.coordination.spec.summarizers:
            self.rnode.register(
                s_region(summarizer.group, peer), summary_size
            )
        self.f_readers[peer] = RingReader(
            self.rnode.regions[f_region(peer)],
            cfg.ring_slots,
            cfg.slot_size,
        )
        writer = RingWriter(cfg.ring_slots, cfg.slot_size,
                            integrity=cfg.ring_integrity)
        writer.tail = self.f_mirror.tail
        self.f_writers[peer] = writer
        if cfg.ack_every:
            self._rearm_baseline[peer] = 0
        self.processes = sorted([*self.processes, peer])
        self.peers = [p for p in self.processes if p != self.name]

    def remove_peer(self, peer: str) -> None:
        """Unwire a departed ``peer`` from the data plane.

        Only the WRITER side goes: the reader and its region are kept so
        records the peer landed before leaving still drain, and our
        at-rest copy of its ring stays available as a repair source.
        """
        if peer not in self.f_readers and peer not in self.processes:
            return
        self.f_writers.pop(peer, None)
        self._rearm_baseline.pop(peer, None)
        if peer in self.processes:
            self.processes.remove(peer)
        self.peers = [p for p in self.processes if p != self.name]

    # -- writer path -----------------------------------------------------

    def render_with_backpressure(self, writer: RingWriter,
                                 ack_region_name: str, payload: bytes,
                                 is_suspected: Callable[[str], bool],
                                 record: Optional[bytes] = None,
                                 record_index: Optional[int] = None):
        """Render a ring record, waiting for reader progress when full.

        The reader's acks land in our local ack region; refreshing it is
        a local memory read.  A reader that stops acking entirely (dead
        or suspected) stops throttling us: we fall back to ring-sizing
        mode rather than blocking behind a corpse — until
        :meth:`rearm_flow_control` observes the reader acking again.

        ``record`` may carry record bytes pre-rendered for ring index
        ``record_index`` (the fan-out path renders ONCE against the
        mirror) — then only the slot claim happens here.  The prebuilt
        bytes are used only while this writer's tail still equals that
        index: concurrent fan-outs interleaving through the
        backpressure waits can reorder per-writer claims, and a record
        carries its index's generation canary, so a drifted writer
        re-renders at its own tail instead.
        """
        cfg = self.config
        reader = self._reader_of(ack_region_name)
        waited = 0
        while True:
            if cfg.ack_every:
                acked = self.rnode.regions[ack_region_name].read_u64(0)
                # A reader can never have consumed records we have not
                # written: a corrupt/torn ack write (tiny 8-byte
                # one-sided writes are just as exposed as records) must
                # not disable overrun protection with a garbage value.
                acked = min(acked, writer.tail)
                if writer.reader_acked is None:
                    self._maybe_rearm(writer, reader, acked)
                writer.ack_up_to(acked)
                if writer.reader_acked is not None:
                    self.probe.ring_depth(
                        f"F->{reader}", writer.tail - writer.reader_acked
                    )
            try:
                if record is not None and writer.tail == record_index:
                    return writer.claim(), record
                return writer.render(payload)
            except RingError:
                waited += 1
                self.probe.backpressure_stall(f"F->{reader}")
                if waited > cfg.backpressure_limit or is_suspected(reader):
                    self._disarm(writer, reader)
                    if record is not None and writer.tail == record_index:
                        return writer.claim(), record
                    return writer.render(payload)
                yield self.env.timeout(cfg.backpressure_wait_us)

    @staticmethod
    def _reader_of(ack_region_name: str) -> str:
        return ack_region_name.rsplit(":", 1)[-1]

    def _disarm(self, writer: RingWriter, reader: str) -> None:
        """Stop throttling on ``reader`` (dead/stuck): ring-sizing mode."""
        writer.reader_acked = None
        self._rearm_baseline.pop(reader, None)

    def _maybe_rearm(self, writer: RingWriter, reader: str,
                     acked: int) -> None:
        """Re-arm flow control once a fallen-back reader acks again.

        Armed by :meth:`rearm_flow_control` (heal/rejoin resync); the
        first ack *above* the recorded baseline proves the reader is
        draining its ring again, so throttling against it is safe — and
        necessary, or a once-suspected reader would never be protected
        from overrun again.
        """
        baseline = self._rearm_baseline.get(reader)
        if baseline is not None and acked > baseline:
            writer.reader_acked = acked
            del self._rearm_baseline[reader]
            self.probe.flow_rearmed(f"F->{reader}")

    def rearm_flow_control(self, peer: str) -> None:
        """Watch for ``peer``'s acks resuming after a heal/rejoin.

        Called when a suspected peer proves alive again (``on_clear``)
        or after our own restart: any writer that fell back to
        ring-sizing mode records the current ack value as a baseline
        and re-arms backpressure at the next observed progress.
        """
        writer = self.f_writers.get(peer)
        if writer is None or not self.config.ack_every:
            return
        if writer.reader_acked is not None:
            return  # still armed: nothing to re-arm
        self._rearm_baseline[peer] = self.rnode.regions[
            f_ack_region(peer)
        ].read_u64(0)

    def prepare_f_writes(self, packet: bytes,
                         is_suspected: Callable[[str], bool]):
        """Render ``packet`` ONCE and claim a slot in every peer's F
        writer; return the (qp, region, offset, bytes) write list for
        the broadcaster's doorbell batch.

        The mirror and the per-peer writers each advance their tail
        exactly once per fan-out, so in the common (uncontended) case
        the record bytes — including the generation canary — are
        identical for all of them: one render, N claims.  A writer
        whose tail drifted from the mirror's (concurrent fan-outs
        interleaving through backpressure) re-renders for its own tail
        inside :meth:`render_with_backpressure`.
        """
        writes = []
        # Authoritative local mirror first: repair sources read this
        # region.
        index = self.f_mirror.tail
        record = self.f_mirror.build(packet)
        offset = self.f_mirror.claim()
        self.rnode.regions[f_region(self.name)].write(offset, record)
        for peer in self.peers:
            offset, slot = yield from self.render_with_backpressure(
                self.f_writers[peer], f_ack_region(peer), packet,
                is_suspected, record=record, record_index=index,
            )
            writes.append(
                (
                    self.rnode.qp_to(peer),
                    self.rnode.region_of(peer, f_region(self.name)),
                    offset,
                    slot,
                )
            )
        return writes

    # -- reader path -----------------------------------------------------

    def drain(self, reader: RingReader, rule: str, sink, label: str = ""):
        """Apply consecutive ready records at ``reader``'s head.

        Each sweep peeks a *run* of landed records in one region read
        and decodes each record exactly once, instead of re-peeking and
        re-parsing the head record-at-a-time.  Blocks at the first
        record whose dependency array is not yet satisfied — the head
        blocks the buffer, as in the semantics.  Returns True when at
        least one record applied.
        """
        progressed = False
        drained = 0
        blocked = False
        while not blocked:
            run = reader.peek_run(_DRAIN_RUN)
            if not run:
                break
            for payload in run:
                try:
                    call, dep = self.codec.decode_call_packet(payload)
                except WireError:
                    # Only reachable with ring integrity off: a
                    # corrupted record passed the canary check and its
                    # garbage payload reached the codec.  Skip it —
                    # losing the call (the checker will flag the
                    # divergence) beats crashing the poll worker.
                    self.probe.wire_reject(label or "F")
                    reader.advance()
                    continue
                if sink.has_seen(call.key()):
                    reader.advance()  # duplicate via recovery path
                    continue
                if not sink.dep_ok(dep):
                    blocked = True
                    break
                self.probe.trace_transfer(
                    label or "F", call.method, call.origin, call.rid,
                    len(payload),
                )
                yield from sink.apply(call, rule)
                reader.advance()
                drained += 1
                progressed = True
        if drained and label:
            # Reader-side consumption total; occupancy (tail − acked)
            # is the writer's to report via ring_depth.
            self.probe.records_drained(label, drained)
        return progressed

    # -- flow-control acks -----------------------------------------------

    def _due_acks(self, leader_of: Callable[[str], str]):
        """Acks owed right now: (key, target, region name, head).

        One entry per ring whose consumption advanced ``ack_every``
        records past the last ack.  A target of None (this node leads
        the L ring) needs no wire write — just the bookkeeping.
        """
        cfg = self.config
        due = []
        for origin, reader in self.f_readers.items():
            key = f"F:{origin}"
            if reader.head - self._acked.get(key, 0) >= cfg.ack_every:
                due.append((key, origin, f_ack_region(self.name),
                            reader.head))
        for gid, reader in self.l_readers.items():
            key = f"L:{gid}"
            if reader.head - self._acked.get(key, 0) >= cfg.ack_every:
                leader = leader_of(gid)
                target = None if leader == self.name else leader
                due.append((key, target, l_ack_region(gid, self.name),
                            reader.head))
        return due

    def flush_acks(self, leader_of: Callable[[str], str]):
        """Push ring-progress acks back to the writers (flow control).

        ``leader_of(gid)`` names the current writer of an L ring (the
        group's leader owns the corresponding ack slot).
        """
        for key, target, region_name, head in self._due_acks(leader_of):
            if target is not None:
                yield from self.post_ack(target, region_name, head)
                self.probe.ack_flush(key)
            self._acked[key] = head

    def piggyback_ack_writes(self, leader_of: Callable[[str], str]):
        """Due acks as (qp, region, offset, bytes) write tuples, to be
        coalesced onto an outbound doorbell batch instead of paying
        their own post + completion wait.

        Marks the acks flushed immediately: a piggybacked ack that is
        lost with its batch is simply re-sent ``ack_every`` records
        later (flow control errs on the throttled side, never the
        unsafe side).
        """
        writes = []
        for key, target, region_name, head in self._due_acks(leader_of):
            if target is not None:
                writes.append(
                    (
                        self.rnode.qp_to(target),
                        self.rnode.region_of(target, region_name),
                        0,
                        head.to_bytes(8, "little"),
                    )
                )
                self.probe.ack_flush(key)
            self._acked[key] = head
        return writes

    def post_ack(self, target: str, region_name: str, head: int):
        region = self.rnode.region_of(target, region_name)
        qp = self.rnode.qp_to(target)
        yield from self.retry_write(
            qp, region, 0, head.to_bytes(8, "little"), label="ack"
        )

    # -- recovery: retries and ring repair -------------------------------

    def retry_write(self, qp, region, offset: int, payload: bytes,
                    label: str = "write"):
        """One-sided write with capped exponential backoff on transient
        failures (injected NIC faults, partition blips).

        In phi mode each backoff is jittered by ``±retry_jitter``
        (drawn from a per-node seed substream, so same seed ⇒ same
        schedule) to de-synchronize retry storms, and a nonzero
        ``retry_budget_us`` bounds the *cumulative* backoff a single op
        may spend — exhausting it surfaces as
        ``retry_budget_exhausted``, distinct from running out of
        attempts.  Fixed mode keeps the bare exponential schedule
        byte-identical to the seed.

        Permission errors are *not* transient — they are Mu's leader-
        change signal and must surface immediately.  Returns the last
        :class:`~repro.rdma.WorkCompletion` either way.
        """
        cfg = self.config
        delay = cfg.op_retry_us
        jitter = cfg.retry_jitter if cfg.fd_mode == "phi" else 0.0
        budget = cfg.retry_budget_us
        spent = 0.0
        wc = None
        for _attempt in range(cfg.op_retry_limit + 1):
            started = self.env.now
            yield from self.rnode.cpu.use(qp.config.post_cpu_us)
            wc = yield qp.post_write(region, offset, payload)
            if (
                wc.status is WcStatus.SUCCESS
                or wc.status is WcStatus.PERMISSION_ERROR
            ):
                if wc.status is WcStatus.SUCCESS and self.health is not None:
                    self.health.record(qp.remote.name,
                                       self.env.now - started)
                return wc
            if not self.rnode.alive:
                return wc  # we crashed mid-retry: stop
            self.probe.op_retry(label)
            wait = delay
            if jitter > 0.0:
                wait *= 1.0 + self._retry_rng.uniform(-jitter, jitter)
            if budget > 0.0 and spent + wait > budget:
                self.probe.retry_budget_exhausted(label)
                return wc
            spent += wait
            yield self.env.timeout(wait)
            delay = min(delay * 2, cfg.op_retry_cap_us)
        return wc

    def reset_f_misses(self, origin: str) -> None:
        self._f_misses[origin] = 0

    def maybe_repair_f(self, origin: str,
                       is_suspected: Callable[[str], bool]):
        """Hole detection for ``origin``'s F ring.

        Called by the applier after an empty sweep of that ring.  Every
        256 consecutive misses we probe *ahead* of the head locally at
        exponentially growing offsets; a valid record ahead of a missing
        head means a write was lost (injected fault / partition blip),
        not that the writer is idle — trigger a repair pass.
        """
        misses = self._f_misses.get(origin, 0) + 1
        self._f_misses[origin] = misses
        if misses % 256:
            return False
        cfg = self.config
        reader = self.f_readers[origin]
        ahead = 1
        found_ahead = False
        while ahead <= 1024:
            index = reader.head + ahead
            offset = (index % cfg.ring_slots) * cfg.slot_size
            slot = reader.region.read(offset, cfg.slot_size)
            if parse_record(slot, index, cfg.ring_slots) is not None:
                found_ahead = True
                break
            ahead *= 2
        if not found_ahead:
            # No record ahead — but a *frontier* record can be damaged
            # too: a corrupted length field makes the final record of a
            # burst parse as "not landed yet", and with nothing ever
            # landing ahead of it the probe above never fires.  Nonzero
            # bytes that do not parse at the head are suspicious enough
            # to attempt a repair pass (a virgin head just means the
            # writer is idle; a previous-lap leftover costs one failed
            # fetch per miss cycle).
            head_offset = (
                reader.head % cfg.ring_slots
            ) * cfg.slot_size
            head_slot = reader.region.read(head_offset, cfg.slot_size)
            if not any(head_slot):
                return False
            repaired = yield from self.repair_f_ring(origin, is_suspected)
            if repaired:
                self.probe.hole_repair(f"F:{origin}")
            return repaired > 0
        self.probe.hole_repair(f"F:{origin}")
        repaired = yield from self.repair_f_ring(origin, is_suspected)
        return repaired > 0

    def resync_lapped_f(self, origin: str,
                        is_suspected: Callable[[str], bool]):
        """Recover a reader that was *lapped* on ``origin``'s F ring.

        While we were cut off (partitioned / restarting), the writer —
        disarmed from acks by our silence — kept claiming slots and
        overwrote records we never consumed.  Those records are gone
        from every surviving ring copy; they reach us out of band
        (summary transfer, broadcast recovery).  The ring itself can
        only resume from the writer's surviving window: scan an
        authoritative copy for the frontier, fast-forward the head to
        the oldest index still present, then run the normal hole repair
        to fill our local copy from there.  Returns True when the head
        moved or records were repaired.
        """
        cfg = self.config
        reader = self.f_readers[origin]
        region_name = f_region(origin)
        sources = [origin] + [p for p in self.peers if p != origin]
        frontier = None
        for source in sources:
            if source == self.name or is_suspected(source):
                continue
            if not self.rnode.fabric.nodes[source].alive:
                continue
            qp = self.rnode.qp_to(source)
            remote = self.rnode.region_of(source, region_name)
            wc = yield from qp.read(
                remote, 0, cfg.ring_slots * cfg.slot_size
            )
            if wc.status is not WcStatus.SUCCESS or wc.data is None:
                continue
            frontier = scan_frontier(
                wc.data, reader.head, cfg.ring_slots, cfg.slot_size
            )
            if frontier is not None:
                break
        if frontier is None:
            return False  # nobody reachable holds a parseable record
        oldest_surviving = max(frontier - cfg.ring_slots, 0)
        moved = oldest_surviving > reader.head
        reader.fast_forward(oldest_surviving)
        self.probe.ring_resync(f"F:{origin}")
        repaired = yield from self.repair_f_ring(origin, is_suspected)
        return moved or repaired > 0

    def repair_f_ring(self, origin: str,
                      is_suspected: Callable[[str], bool]):
        """Fill holes in our copy of ``origin``'s F ring by reading
        other copies — the origin's authoritative mirror first, then any
        peer's replica — with one-sided reads.

        Scans forward from the reader head, repairing every missing
        index until no reachable source has the next one (i.e. we hit
        the true frontier).  Returns the number of repaired records.
        """
        cfg = self.config
        reader = self.f_readers[origin]
        repaired = 0
        index = reader.head
        for _ in range(cfg.ring_slots):
            offset = (index % cfg.ring_slots) * cfg.slot_size
            slot = reader.region.read(offset, cfg.slot_size)
            if parse_record(slot, index, cfg.ring_slots) is not None:
                index += 1  # already have this one
                continue
            found = yield from self._fetch_record(origin, index,
                                                  is_suspected)
            if found is None:
                break  # true frontier: nobody has the next record
            reader.region.write(offset, found)
            repaired += 1
            index += 1
        return repaired

    def _fetch_record(self, origin: str, index: int,
                      is_suspected: Callable[[str], bool]):
        """Fetch ``origin``'s F record at absolute ``index`` from an
        authoritative copy: the origin's own mirror first, then any
        peer's replica.  Returns the validated record bytes (CRC
        checked for checksummed records) or None.

        Phi mode hedges each fetch: a straggling source no longer
        serializes the whole repair pass (see :meth:`hedged_read`).
        Fixed mode keeps the serial loop byte-identical to the seed.
        """
        cfg = self.config
        if cfg.fd_mode == "phi":
            return (
                yield from self._hedged_fetch(origin, index, is_suspected)
            )
        region_name = f_region(origin)
        offset = (index % cfg.ring_slots) * cfg.slot_size
        sources = [origin] + [p for p in self.peers if p != origin]
        for source in sources:
            if source == self.name or is_suspected(source):
                continue
            if not self.rnode.fabric.nodes[source].alive:
                continue
            qp = self.rnode.qp_to(source)
            remote = self.rnode.region_of(source, region_name)
            wc = yield from qp.read(remote, offset, cfg.slot_size)
            if wc.status is not WcStatus.SUCCESS or wc.data is None:
                continue
            record = parse_record(wc.data, index, cfg.ring_slots)
            if record is not None:
                return record
        return None

    # -- hedged reads (phi mode) ------------------------------------------

    def _hedge_delay_us(self) -> float:
        """Adaptive hedge trigger: p99 of recent successful repair-read
        latencies, or the configured floor until enough samples accrue."""
        if len(self._read_lat) >= 8:
            ordered = sorted(self._read_lat)
            return ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
        return self.config.hedge_delay_us

    def _read_from(self, source: str, region_name: str, offset: int,
                   length: int):
        """One one-sided read, feeding the latency books on success."""
        qp = self.rnode.qp_to(source)
        remote = self.rnode.region_of(source, region_name)
        started = self.env.now
        wc = yield from qp.read(remote, offset, length)
        if wc.status is WcStatus.SUCCESS:
            latency = self.env.now - started
            self._read_lat.append(latency)
            if self.health is not None:
                self.health.record(source, latency)
        return wc

    def hedged_read(self, sources: list[str], region_name: str,
                    offset: int, length: int, label: str = "read"):
        """Read with a hedge: post to ``sources[0]``; if it hasn't
        completed within the adaptive hedge delay, post the same read
        to ``sources[1]`` and take whichever completes first.

        Returns ``(wc, source)`` for the winning read (a failed winner
        falls back to awaiting the other read).  With a single source
        this degenerates to a plain read.
        """
        primary = sources[0]
        first = self.env.process(
            self._read_from(primary, region_name, offset, length),
            name=f"hedge1:{self.name}:{label}",
        )
        if len(sources) < 2:
            wc = yield first
            return wc, primary
        timer = self.env.timeout(self._hedge_delay_us())
        done = yield self.env.any_of([first, timer])
        if first in done:
            return done[first], primary
        self.probe.hedged_read(label)
        backup = sources[1]
        second = self.env.process(
            self._read_from(backup, region_name, offset, length),
            name=f"hedge2:{self.name}:{label}",
        )
        done = yield self.env.any_of([first, second])
        if second in done:
            wc = done[second]
            if wc.status is WcStatus.SUCCESS:
                self.probe.hedge_win(label)
                return wc, backup
            wc = yield first  # hedge failed: fall back to the primary
            return wc, primary
        wc = done[first]
        if wc.status is WcStatus.SUCCESS:
            return wc, primary
        wc = yield second  # primary failed: the hedge is the fallback
        return wc, backup

    def _hedged_fetch(self, origin: str, index: int,
                      is_suspected: Callable[[str], bool]):
        """Phi-mode record fetch: same source preference as the serial
        loop (the origin's authoritative mirror first), but each
        attempt hedges to the lowest-latency remaining replica so one
        limping source cannot serialize the repair."""
        cfg = self.config
        region_name = f_region(origin)
        offset = (index % cfg.ring_slots) * cfg.slot_size
        sources = [
            s for s in [origin] + [p for p in self.peers if p != origin]
            if s != self.name and not is_suspected(s)
            and self.rnode.fabric.nodes[s].alive
        ]
        i = 0
        while i < len(sources):
            primary = sources[i]
            backups = sources[i + 1:]
            if self.health is not None:
                backups = self.health.rank(backups)
            pair = [primary] + backups[:1]
            wc, _source = yield from self.hedged_read(
                pair, region_name, offset, cfg.slot_size,
                label=f"F:{origin}",
            )
            if wc.status is WcStatus.SUCCESS and wc.data is not None:
                record = parse_record(wc.data, index, cfg.ring_slots)
                if record is not None:
                    return record
            i += 1
        return None

    def repair_corrupt_f(self, origin: str, index: int,
                         is_suspected: Callable[[str], bool]):
        """Detect-and-repair for one CRC-rejected F record.

        The corrupt slot is *quarantined* (zeroed, so it reads as a
        hole) and refetched from an authoritative copy — the origin's
        local mirror is written with plain memory writes and is never
        exposed to in-flight corruption.  The pre-repair bytes are
        classified against the authoritative record: a prefix that
        matches followed by a tail that does not is a *torn* write; a
        mostly-matching record with isolated flipped bytes is a
        *bitflip*.  Returns True when the record was restored (False
        leaves the slot quarantined for the probe-ahead repair pass to
        retry once a source is reachable).
        """
        cfg = self.config
        reader = self.f_readers[origin]
        ring = f"F:{origin}"
        offset = (index % cfg.ring_slots) * cfg.slot_size
        before = bytes(reader.region.read(offset, cfg.slot_size))
        self.probe.crc_reject(ring)
        reader.quarantine(index)
        found = yield from self._fetch_record(origin, index, is_suspected)
        if found is None:
            return False
        kind = classify_corruption(before, found)
        if kind == "torn":
            self.probe.torn_detect(ring)
        reader.region.write(offset, found)
        self.probe.slot_repair(ring)
        self.probe.trace_repair(ring, index, kind)
        return True
