"""Cross-shard transactions over a :class:`ShardedCluster`.

The commit-path design follows SafarDB (PAPERS.md): whether a
multi-shard call-set needs any cross-shard coordination is decided by
the *RDT commutativity facts* the coordination analysis already
computed, not by a blanket two-phase-lock protocol.

- **Commuting transactions** — no constituent method is conflicting
  under :class:`~repro.core.MethodRelations` — commit per-shard
  fire-and-forget: every call is submitted to its shard concurrently
  and the transaction commits once each shard has locally committed its
  calls.  Replication proceeds asynchronously through each shard's own
  F rings; no shard ever waits on another.  This is safe because the
  calls commute with *every* concurrent update, so any interleaving of
  two commuting transactions' calls converges to the same state and the
  pair is trivially serializable.
- **Conflicting transactions** — at least one constituent method
  conflicts with some update method — fall back to an ordered
  lock/commit protocol: per-shard transaction locks are acquired in
  ascending shard order (total order ⇒ no deadlock), the conflicting
  calls are then routed through each shard's current leader
  sequentially (so a rejection aborts the transaction before anything
  else is issued), the conflict-free remainder is issued concurrently,
  and the locks are released.  Two conflicting transactions sharing
  shards therefore commit in one global order on every shard they
  share.

Every transaction records BEGIN and COMMIT/ABORT instants (with the
identities of the calls it actually issued) into the
:class:`~repro.runtime.trace.ShardedRecorder`, which is what the
offline :class:`~repro.runtime.checker.ShardedTraceChecker` checks
atomicity against.  ``lock_path_enabled=False`` is the negative
control: conflicting transactions are then committed like commuting
ones, a rejected constituent no longer aborts the set before its
siblings land, and the atomicity check fails.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from ..sim import Resource
from .node import ImpermissibleError, NotLeaderError, SubmitError

__all__ = ["TxnCoordinator", "TxnOp", "TxnOutcome"]


@dataclass(frozen=True)
class TxnOp:
    """One constituent call: routed by ``key``, submitted as
    ``submit(method, arg)`` (``arg`` already embeds the key for keyed
    specs like ``bankmap``)."""

    key: Any
    method: str
    arg: Any = None


@dataclass
class TxnOutcome:
    """What happened to one transaction."""

    txn_id: int
    classification: str  # "commuting" | "locked"
    committed: bool
    #: Identities of the calls that actually landed, as
    #: ``(shard, method, origin, rid)`` — the trace-checkable receipt.
    issued: list[tuple[int, str, str, int]] = field(default_factory=list)
    shards: tuple[int, ...] = ()
    rejected: int = 0


class TxnCoordinator:
    """Classifies and commits multi-shard call-sets (see module doc).

    One coordinator serves any number of concurrent client processes;
    per-shard transaction locks live here (they order *transactions*,
    not calls — single-call traffic never touches them).
    """

    def __init__(self, sharded, recorder: Optional[Any] = None,
                 lock_path_enabled: bool = True,
                 retry_wait_us: float = 50.0, max_attempts: int = 50):
        self.sharded = sharded
        self.env = sharded.env
        self.relations = sharded.coordination.relations
        self.recorder = recorder
        #: The load-bearing safety knob: False sends conflicting
        #: transactions down the uncoordinated path (negative control).
        self.lock_path_enabled = lock_path_enabled
        self.retry_wait_us = retry_wait_us
        self.max_attempts = max_attempts
        self._locks = [
            Resource(self.env, capacity=1)
            for _ in range(sharded.n_shards)
        ]
        self._ids = itertools.count(1)
        self._gateway_rr = itertools.count()
        self.counters: dict[str, int] = {
            "txns_commuting": 0,
            "txns_locked": 0,
            "commits": 0,
            "aborts": 0,
            "lock_waits": 0,
            "rejected_calls": 0,
        }

    # -- classification --------------------------------------------------

    def classify(self, ops: Sequence[TxnOp]) -> str:
        """``"commuting"`` iff no constituent method conflicts with any
        update method of the spec (its own method included).

        The check is against the *whole* method vocabulary, not just
        the transaction's own ops: a conflicting method needs shard-
        leader ordering against other transactions' calls even when
        nothing inside this set conflicts pairwise.
        """
        if any(self.relations.is_conflicting(op.method) for op in ops):
            return "locked"
        return "commuting"

    # -- entry points ----------------------------------------------------

    def submit(self, ops: Iterable[TxnOp]):
        """Run the transaction as a sim process; the process's value is
        its :class:`TxnOutcome`."""
        ops = list(ops)
        txn_id = next(self._ids)
        return self.env.process(
            self._run(txn_id, ops), name=f"txn:{txn_id}"
        )

    def _run(self, txn_id: int, ops: list[TxnOp]):
        classification = self.classify(ops)
        by_shard: dict[int, list[TxnOp]] = {}
        for op in ops:
            by_shard.setdefault(self.sharded.shard_of(op.key), []).append(op)
        shard_ids = tuple(sorted(by_shard))
        self._record("BEGIN", txn_id, classification, shard_ids, [])
        use_locks = classification == "locked" and self.lock_path_enabled
        if use_locks:
            self.counters["txns_locked"] += 1
            outcome = yield from self._run_locked(
                txn_id, classification, by_shard, shard_ids
            )
        else:
            if classification == "locked":
                self.counters["txns_locked"] += 1
            else:
                self.counters["txns_commuting"] += 1
            outcome = yield from self._run_fire_and_forget(
                txn_id, classification, by_shard, shard_ids
            )
        self.counters["commits" if outcome.committed else "aborts"] += 1
        self._record(
            "COMMIT" if outcome.committed else "ABORT",
            txn_id, classification, shard_ids, outcome.issued,
        )
        return outcome

    # -- commit paths ----------------------------------------------------

    def _run_fire_and_forget(self, txn_id, classification, by_shard,
                             shard_ids):
        """All calls concurrently, no coordination (commuting path)."""
        flat = [
            (shard, op)
            for shard in shard_ids
            for op in by_shard[shard]
        ]
        results = yield from self._submit_concurrent(flat)
        issued, rejected = [], 0
        for (shard, op), call in zip(flat, results):
            if call is None:
                rejected += 1
            else:
                issued.append((shard, call.method, call.origin, call.rid))
        return TxnOutcome(
            txn_id=txn_id,
            classification=classification,
            committed=rejected == 0,
            issued=issued,
            shards=shard_ids,
            rejected=rejected,
        )

    def _run_locked(self, txn_id, classification, by_shard, shard_ids):
        """Ordered lock/commit: locks in ascending shard order, then
        conflicting calls sequentially via each shard's leader (a
        rejection aborts before anything else is issued), then the
        conflict-free remainder concurrently."""
        held: list[int] = []
        issued: list[tuple[int, str, str, int]] = []
        rejected = 0
        try:
            for shard in shard_ids:
                before = self.env.now
                yield self._locks[shard].acquire()
                if self.env.now > before:
                    self.counters["lock_waits"] += 1
                held.append(shard)
            conflicting = [
                (shard, op)
                for shard in shard_ids
                for op in by_shard[shard]
                if self.relations.is_conflicting(op.method)
            ]
            free = [
                (shard, op)
                for shard in shard_ids
                for op in by_shard[shard]
                if not self.relations.is_conflicting(op.method)
            ]
            for shard, op in conflicting:
                call = yield from self._submit_op(shard, op, to_leader=True)
                if call is None:
                    # All-or-nothing holds: nothing else was issued yet.
                    rejected += 1
                    return TxnOutcome(
                        txn_id=txn_id,
                        classification=classification,
                        committed=False,
                        issued=issued,
                        shards=shard_ids,
                        rejected=rejected,
                    )
                issued.append((shard, call.method, call.origin, call.rid))
            results = yield from self._submit_concurrent(free)
            for (shard, op), call in zip(free, results):
                if call is None:
                    rejected += 1
                else:
                    issued.append(
                        (shard, call.method, call.origin, call.rid)
                    )
            return TxnOutcome(
                txn_id=txn_id,
                classification=classification,
                committed=rejected == 0,
                issued=issued,
                shards=shard_ids,
                rejected=rejected,
            )
        finally:
            for shard in reversed(held):
                self._locks[shard].release()

    # -- submission ------------------------------------------------------

    def _submit_concurrent(self, flat):
        """Issue ``[(shard, op), ...]`` as parallel sub-processes and
        collect their calls (None per rejected op)."""
        processes = [
            self.env.process(
                self._submit_op(
                    shard, op,
                    to_leader=self.relations.is_conflicting(op.method),
                )
            )
            for shard, op in flat
        ]
        results = []
        for process in processes:
            call = yield process
            results.append(call)
        return results

    def _submit_op(self, shard_index: int, op: TxnOp, to_leader: bool):
        """Submit one call to its shard; returns the committed
        :class:`~repro.core.Call` or None on rejection.

        Mirrors the workload driver's redirect discipline: failed-node
        fallback, leader routing for conflicting methods,
        ``NotLeaderError`` redirects, and timed retries over transient
        ``SubmitError``\\ s (mid-failover).
        """
        shard = self.sharded.shard(shard_index)
        names = shard.node_names()
        gateway = names[next(self._gateway_rr) % len(names)]
        target = shard.node(gateway)
        for _attempt in range(self.max_attempts):
            if getattr(target, "failed", False):
                live = [
                    name for name in names
                    if not getattr(shard.node(name), "failed", False)
                ]
                if live:
                    target = shard.node(live[0])
            if to_leader and hasattr(target, "current_leader"):
                target = shard.node(target.current_leader(op.method))
            try:
                request = target.submit(op.method, op.arg)
                call = yield request
                return call
            except NotLeaderError as redirect:
                target = shard.node(redirect.leader)
            except ImpermissibleError:
                self.counters["rejected_calls"] += 1
                return None
            except SubmitError:
                yield self.env.timeout(self.retry_wait_us)
        return None

    # -- recording -------------------------------------------------------

    def _record(self, name, txn_id, classification, shard_ids, issued):
        if self.recorder is not None:
            self.recorder.record_txn(
                name, txn_id, classification, shard_ids, issued
            )
