"""Cluster orchestration: fabric wiring + node lifecycle + run checks.

``HambandCluster`` is the top of the public API: give it an
:class:`~repro.core.ObjectSpec` (or a pre-computed ``Coordination``)
and a node count, then drive it inside the simulation:

>>> from repro.sim import Environment
>>> from repro.datatypes import counter_spec
>>> from repro.runtime import HambandCluster
>>> env = Environment()
>>> cluster = HambandCluster.build(env, counter_spec(), n_nodes=3)
>>> response = cluster.node("p1").submit("add", 5)
>>> env.run(until=response)     # doctest: +ELLIPSIS
Call(...)
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Union

from ..consensus.mu import mu_channel
from ..core import (
    AbstractMachine,
    ConcreteEvent,
    Coordination,
    ObjectSpec,
    RefinementChecker,
)
from ..rdma import Fabric, RdmaConfig
from ..sim import Environment
from .membership import MembershipEpoch, join_cluster, leave_cluster
from .node import HambandNode, RuntimeConfig
from .probe import rollup_node_stats

__all__ = ["HambandCluster"]


class HambandCluster:
    """All replicas of one Hamband object plus their fabric."""

    def __init__(self, env: Environment, coordination: Coordination,
                 fabric: Fabric, config: Optional[RuntimeConfig] = None,
                 leaders: Optional[dict[str, str]] = None,
                 probe_factory: Optional[Callable[[str], Any]] = None):
        self.env = env
        self.coordination = coordination
        self.fabric = fabric
        self.config = config or RuntimeConfig()
        self.probe_factory = probe_factory
        names = fabric.node_names()
        #: The founding member list: the wire codec's string table is
        #: derived from it on every node forever (joiners included), so
        #: elastic membership never perturbs interned ids mid-run.
        self.founding = list(names)
        #: Nodes removed by scale-in, kept addressable for inspection.
        self.departed: dict[str, HambandNode] = {}
        self.epoch = MembershipEpoch(0, tuple(names))
        self.leaders = leaders or coordination.conflict_graph.assign_leaders(
            names
        )
        #: Cluster-wide concrete-event log in simulation-time order,
        #: replayable against the abstract semantics.
        self.events: list[ConcreteEvent] = []
        for group in coordination.sync_groups():
            fabric.connect_all(channel=mu_channel(group.gid))
        self.nodes: dict[str, HambandNode] = {
            name: HambandNode(
                fabric.nodes[name],
                coordination,
                names,
                self.leaders,
                self.config,
                self.events,
                probe=probe_factory(name) if probe_factory else None,
            )
            for name in names
        }
        # Non-leaders start with no write permission on the Mu channels,
        # exactly as Mu grants a single writer per log.
        for group in coordination.sync_groups():
            gid = group.gid
            leader = self.leaders[gid]
            for name in names:
                for peer in names:
                    if peer in (name, leader):
                        continue
                    host = fabric.nodes[name]
                    host.qp_to(peer, mu_channel(gid)).revoke_peer_write()

    @classmethod
    def build(cls, env: Environment,
              spec_or_coordination: Union[ObjectSpec, Coordination],
              n_nodes: int, config: Optional[RuntimeConfig] = None,
              rdma_config: Optional[RdmaConfig] = None,
              cpu_cores: int = 2,
              leaders: Optional[dict[str, str]] = None,
              probe_factory: Optional[Callable[[str], Any]] = None,
              ) -> "HambandCluster":
        """Construct a fully wired n-node cluster (nodes p1..pn).

        ``probe_factory(name)`` may supply a custom
        :class:`~repro.runtime.probe.RuntimeProbe` per node (e.g. the
        no-op base class to run uninstrumented); by default every node
        installs its own :class:`~repro.runtime.probe.CountingProbe`.
        """
        if isinstance(spec_or_coordination, Coordination):
            coordination = spec_or_coordination
        else:
            coordination = Coordination.analyze(spec_or_coordination)
        fabric = Fabric.build(
            env, n_nodes, config=rdma_config, cpu_cores=cpu_cores
        )
        return cls(env, coordination, fabric, config=config, leaders=leaders,
                   probe_factory=probe_factory)

    # -- convenience -----------------------------------------------------------

    def node(self, name: str) -> HambandNode:
        return self.nodes[name]

    def node_names(self) -> list[str]:
        return sorted(self.nodes)

    def applied_totals(self) -> dict[str, int]:
        return {name: node.applied_total() for name, node in self.nodes.items()}

    def stats(self) -> dict[str, dict]:
        """Per-node runtime statistics plus a cluster-wide rollup.

        Node names map to ``HambandNode.stats()`` snapshots; the extra
        ``"cluster"`` key aggregates them (counters summed, probe
        counters summed, high-water marks maxed — see
        :func:`~repro.runtime.probe.rollup_node_stats`) so dashboards
        and tests don't re-implement the aggregation.
        """
        per_node = {name: node.stats() for name, node in self.nodes.items()}
        per_node["cluster"] = rollup_node_stats(per_node)
        return per_node

    def quiesce(self, total_updates: int, check_every_us: float = 5.0,
                timeout_us: float = 1_000_000.0):
        """Process: wait until every node reflects ``total_updates`` calls.

        This is the paper's replication-complete condition used for
        throughput: total calls divided by the time at which all update
        calls are replicated on all nodes.
        """
        deadline = self.env.now + timeout_us
        while True:
            if all(
                node.applied_total() >= total_updates
                for node in self.nodes.values()
                # A heartbeat-suspended node counts as failed (the
                # paper's injection): peers may have revoked its log
                # permissions, so it legitimately lags.
                if node.rnode.alive and not node.heartbeat.suspended
            ):
                return self.env.now
            if self.env.now > deadline:
                raise TimeoutError(
                    f"cluster did not quiesce: {self.applied_totals()} "
                    f"vs expected {total_updates}"
                )
            yield self.env.timeout(check_every_us)

    def effective_states(self) -> dict[str, Any]:
        return {
            name: node.effective_state() for name, node in self.nodes.items()
        }

    def converged(self) -> bool:
        states = list(self.effective_states().values())
        spec = self.coordination.spec
        return all(spec.state_eq(states[0], s) for s in states[1:])

    def integrity_holds(self) -> bool:
        spec = self.coordination.spec
        return all(
            spec.invariant(state)
            for state in self.effective_states().values()
        )

    def failures(self) -> list[str]:
        """Crashed background workers across the cluster (bugs)."""
        return [
            failure
            for node in self.nodes.values()
            for failure in node.failures
        ]

    def check_refinement(self) -> AbstractMachine:
        """Replay this run's event log against the abstract semantics."""
        checker = RefinementChecker(self.coordination, self.node_names())
        return checker.replay(self.events)

    # -- elastic membership ------------------------------------------------

    def add_node(self, name: str, cpu_cores: int = 2,
                 transfer: bool = True, barrier: bool = True,
                 wire_version: Optional[int] = None) -> HambandNode:
        """Scale-out: join ``name`` into the running cluster.

        The joiner starts refusing requests and flips live once its
        authoritative state transfer (the same engine restarts and heals
        use) completes under the frontier barrier.  See
        :func:`~repro.runtime.membership.join_cluster` for the knobs.
        """
        return join_cluster(
            self, name, cpu_cores=cpu_cores, transfer=transfer,
            barrier=barrier, wire_version=wire_version,
        )

    def remove_node(self, name: str) -> HambandNode:
        """Scale-in: remove ``name`` (fail-stop + unwire + epoch bump);
        removing a group leader forces a clean re-election."""
        return leave_cluster(self, name)

    # -- failure injection -------------------------------------------------

    def suspend_heartbeat(self, name: str) -> None:
        """The paper's failure injection: the node stops serving (its
        requests get redirected to live nodes) and its silent heartbeat
        makes peers suspect it — while its registered memory stays
        remotely accessible, as RDMA failure semantics allow."""
        self.nodes[name].failed = True
        self.nodes[name].heartbeat.suspend()

    def crash(self, name: str) -> None:
        """Full fail-stop: heartbeat silent and RDMA unreachable.

        An in-flight reliable broadcast at the crashed node stops at its
        next step and leaves the backup slot set — exactly the half-
        delivered state the suspicion-driven recovery path repairs."""
        self.suspend_heartbeat(name)
        self.nodes[name].broadcast.halted = True
        self.fabric.nodes[name].crash()

    def restart(self, name: str, catch_up: bool = True) -> None:
        """Bring a crashed node back: fabric reachable, heartbeat
        beating, requests accepted again.

        With ``catch_up`` (the default) the node runs its supervised
        rejoin pass — re-discover leaders, repair every F ring and L log
        copy, refresh summary slots — so it converges with the cluster.
        ``catch_up=False`` deliberately skips recovery (the negative
        control for the trace checker: the restarted node stays behind
        and the run fails convergence)."""
        node = self.nodes[name]
        self.fabric.nodes[name].recover()
        node.broadcast.halted = False
        node.heartbeat.resume()
        node.failed = False
        if catch_up:
            node.start_rejoin()

    def partition(self, side_a: list[str], side_b: list[str]) -> None:
        """Cut every fabric link between the two sides."""
        self.fabric.partition(side_a, side_b)

    def heal(self) -> None:
        self.fabric.heal_all()
