"""Layer 4 — the rare-path control plane (paper §4).

:class:`ControlPlane` owns the node's two-sided messaging: the per-peer
listener, the vote/discovery dispatch into Mu, client-call forwarding
("conflicting calls are automatically redirected to the corresponding
leader node(s)"), and broadcast recovery when a peer is suspected.

None of this touches the data path: in a healthy run the only control
traffic is forwarding (when :meth:`HambandNode.submit_any` is used) —
votes, discovery, and recovery fire only around failures.

Wiring (done by the façade through :meth:`bind`): the control plane
needs the conflict coordinator (Mu dispatch and leader views), the
apply engine (recovered-call delivery), the reliable-broadcast endpoint
(backup-slot fetch), and a ``submit`` callable for serving forwarded
requests.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Optional

from ..core import Call
from ..rdma import RdmaNode
from ..sim import Event
from .config import RuntimeConfig, s_region
from .errors import ImpermissibleError, NotLeaderError, SubmitError
from .probe import RuntimeProbe
from .wire import WireCodec

__all__ = ["ControlPlane"]


class ControlPlane:
    """Two-sided listener + forwarding + broadcast recovery."""

    def __init__(self, rnode: RdmaNode, config: RuntimeConfig,
                 probe: Optional[RuntimeProbe] = None,
                 counters: Optional[dict[str, int]] = None,
                 codec: Optional[WireCodec] = None):
        self.rnode = rnode
        self.env = rnode.env
        self.name = rnode.name
        self.config = config
        self.probe = probe or RuntimeProbe()
        self.counters = counters if counters is not None else {}
        self.codec = codec or WireCodec(config.wire_version)
        #: Outstanding forwarded-request waiters, by token.
        self._fwd_waiters: dict[str, Event] = {}
        #: Served forwarded requests: token -> cached reply, so a
        #: duplicated/retried fwd_req is answered without re-executing.
        self._served: dict[str, tuple] = {}
        #: Tokens currently being served (first delivery wins; a
        #: duplicate arriving mid-serve is dropped — the serve in
        #: progress will reply).
        self._serving: set[str] = set()
        # Collaborators, wired by the façade via bind().
        self.conflict = None
        self.applier = None
        self.broadcast = None
        self.submit: Callable[[str, Any], Event] = None
        #: Optional rejoin hook: ``on_resync(peer)`` is a generator that
        #: pulls ``peer``'s rings/summaries (wired by the façade).
        self.on_resync = None
        #: Optional slow-leader ballot hook (phi mode):
        #: ``on_slow_leader(voter, victim)`` tallies a peer's claim that
        #: ``victim`` is degraded (wired by the façade).
        self.on_slow_leader = None

    def bind(self, conflict, applier, broadcast,
             submit: Callable[[str, Any], Event],
             on_resync=None, on_slow_leader=None) -> None:
        self.conflict = conflict
        self.applier = applier
        self.broadcast = broadcast
        self.submit = submit
        self.on_resync = on_resync
        self.on_slow_leader = on_slow_leader

    def start(self, peers: list[str], spawn: Callable) -> None:
        """Spawn one supervised listener per peer."""
        for peer in peers:
            spawn(self.listener(peer), f"ctl:{self.name}<-{peer}")

    # -- messaging -------------------------------------------------------

    def send(self, peer: str, message: Any):
        qp = self.rnode.qp_to(peer)
        yield from qp.send(self.codec.encode_value(message))

    def listener(self, peer: str):
        qp = self.rnode.qp_to(peer)
        while True:
            incoming = yield from qp.recv()
            if not self.rnode.alive:
                continue
            message = self.codec.decode_value(incoming.payload)
            kind = message[0]
            if kind in ("vote_req", "vote_ack", "who_leads", "leader_is"):
                mu = self.conflict.mu_for(message[1])
                if mu is None:
                    continue
                reply = mu.handle_control(incoming.src, message)
                if reply is not None:
                    yield from self.send(incoming.src, reply)
            elif kind == "fwd_req":
                self.env.process(
                    self.serve_forwarded(incoming.src, message),
                    name=f"fwd:{self.name}",
                )
            elif kind == "fwd_resp":
                _kind, token, outcome, data = message
                waiter = self._fwd_waiters.pop(token, None)
                if waiter is not None and not waiter.triggered:
                    waiter.succeed((outcome, data))
            elif kind == "resync":
                # A peer that just cleared us of suspicion asks us to
                # pull its data — records it skipped us on while it
                # (wrongly or rightly) considered us dead.
                if self.on_resync is not None:
                    self.env.process(
                        self.on_resync(incoming.src),
                        name=f"resync:{self.name}",
                    )
            elif kind == "slow_leader":
                # A peer's health tracker classified ``message[1]``
                # (typically the current leader) as degraded and is
                # gathering a quorum for demotion.
                if self.on_slow_leader is not None:
                    self.on_slow_leader(incoming.src, message[1])

    # -- request forwarding ----------------------------------------------

    def forward_to_leader(self, gid: str, method: str, arg: Any,
                          max_hops: int = 5):
        # ONE token for all hops/retries of this request: the serving
        # side dedups on it, so a retry after a lost reply (or a
        # duplicated request) cannot execute the call twice.
        token_rid = self.applier.next_rid()
        token = f"{self.name}:{token_rid}"
        for _hop in range(max_hops):
            leader = self.conflict.leader_of(gid)
            if leader == self.name:
                result = yield self.submit(method, arg)
                return result
            waiter = self.env.event()
            self._fwd_waiters[token] = waiter
            self.probe.span_begin("forward", method, self.name, token_rid)
            yield from self.send(leader, ("fwd_req", token, method, arg))
            deadline = self.env.timeout(self.config.fwd_timeout_us)
            result = yield self.env.any_of([waiter, deadline])
            self.probe.span_end("forward", method, self.name, token_rid)
            if waiter not in result:
                # Request or reply lost (drop/crash): clear the waiter,
                # re-resolve the leader, and retry with the same token.
                self._fwd_waiters.pop(token, None)
                yield from self.conflict.discover_leader(gid)
                continue
            outcome, data = result[waiter]
            if outcome == "ok":
                m, a, origin, rid = data
                return Call(m, a, origin, rid)
            if outcome == "impermissible":
                raise ImpermissibleError(data)
            if outcome == "redirect":
                # The peer no longer leads; adopt its view and retry.
                self.probe.redirected(method)
                self.conflict.set_leader_view(gid, data)
                continue
            raise SubmitError(str(data))
        raise SubmitError(f"no stable leader found for {method}")

    def serve_forwarded(self, src: str, message: Any):
        _kind, token, method, arg = message
        cached = self._served.get(token)
        if cached is not None:
            # Client retry after a lost reply: resend, don't re-execute.
            yield from self.send(src, ("fwd_resp", token, *cached))
            return
        if token in self._serving:
            return  # duplicate delivery mid-serve: the first will reply
        self._serving.add(token)
        self.counters["forwarded"] = self.counters.get("forwarded", 0) + 1
        self.probe.forwarded(method)
        try:
            result = yield self.submit(method, arg)
            reply = ("ok", (result.method, result.arg, result.origin,
                            result.rid))
        except NotLeaderError as redirect:
            reply = ("redirect", redirect.leader)
        except ImpermissibleError as exc:
            reply = ("impermissible", str(exc))
        except SubmitError as exc:
            reply = ("error", str(exc))
        finally:
            self._serving.discard(token)
        # Only terminal outcomes are cached: a "redirect" answer may
        # legitimately differ on the next hop of the same token.
        if reply[0] != "redirect":
            self._served[token] = reply
        yield from self.send(src, ("fwd_resp", token, reply[0], reply[1]))

    # -- broadcast recovery ----------------------------------------------

    def recover_broadcasts(self, peer: str):
        """Pull a suspected source's backup slot (reliable broadcast).

        The slot holds a tagged message: an F-ring call packet or a
        summary slot image.  Either is delivered if not already seen —
        agreement for the calls the source broadcast half-way.
        """
        message = yield from self.broadcast.fetch_backup_of(peer)
        if message is None:
            return
        tagged = self.codec.decode_value(message)
        if tagged[0] == "F":
            call, dep = self.codec.decode_call_packet(tagged[1])
            if not self.applier.has_seen(call.key()):
                self.applier.add_recovered(call, dep)
        elif tagged[0] == "S":
            _tag, group, slot_bytes = tagged
            (recovered_seq,) = struct.unpack_from("<Q", slot_bytes, 0)
            region = self.rnode.regions[s_region(group, peer)]
            (local_seq,) = struct.unpack_from("<Q", region.read(0, 8), 0)
            if recovered_seq > local_seq:
                region.write(0, slot_bytes)
