"""Heartbeats and failure detection (paper §4 "RDMA Reliable Broadcast").

Each node runs a heartbeat thread that increments a local counter in a
registered region; peers periodically *remote-read* the counter and
suspect the node when it stops advancing.  Failure injection in the
paper's experiments suspends the heartbeat thread — :meth:`suspend`
reproduces that exactly, leaving the node's other threads running.

Two detection modes (``RuntimeConfig.fd_mode``):

* ``"fixed"`` — the classic count-stale-polls timeout, unchanged since
  the seed (byte-compatible with every recorded trace);
* ``"phi"`` — a phi-accrual detector (Hayashibara et al.) over the
  observed inter-advance intervals of each peer's counter: suspicion
  is a *probability* (-log10 that the heartbeat is merely late given
  the learned arrival distribution), so irregular-but-alive peers
  aren't falsely suspected and silent ones are suspected faster than a
  worst-case fixed timeout.

Fail-*slow* peers defeat both: the heartbeat counter is written
**locally**, so it keeps advancing on time even when every RDMA op
toward the node crawls.  :class:`PeerHealth` closes that gap — the
detector's own poll reads (and the transport's one-sided ops) feed a
per-peer latency EWMA, and a peer whose EWMA blows past its observed
healthy floor is classified *degraded*.  Degraded suspicion is pinned
(:meth:`FailureDetector.mark_degraded`): a merely-advancing counter
does not clear it, only a latency recovery does.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Optional

from ..rdma import Access, RdmaNode, WcStatus
from ..sim import Environment

__all__ = ["FailureDetector", "Heartbeat", "PeerHealth", "PhiAccrual"]

HB_REGION = "hamband:heartbeat"


class Heartbeat:
    """The local heartbeat thread of one node."""

    def __init__(self, node: RdmaNode, interval_us: float = 20.0):
        self.node = node
        self.env: Environment = node.env
        self.interval_us = interval_us
        self.region = node.register(
            HB_REGION, 8, access=Access.LOCAL | Access.REMOTE_READ
        )
        self.suspended = False
        self._process = self.env.process(self._run(), name=f"hb:{node.name}")

    def suspend(self) -> None:
        """Failure injection: stop the counter, as the paper does."""
        self.suspended = True

    def resume(self) -> None:
        self.suspended = False

    def _run(self):
        count = 0
        while True:
            if not self.suspended and self.node.alive:
                count += 1
                self.region.write_u64(0, count)
            yield self.env.timeout(self.interval_us)


class PhiAccrual:
    """Phi-accrual suspicion over observed heartbeat-advance intervals.

    ``phi = -log10 P(no advance for this long | learned distribution)``
    using a normal model over a sliding window of inter-advance
    intervals, with a floor on the std-dev so a perfectly regular
    stream doesn't explode on its first wobble.  Until a peer has
    :data:`MIN_SAMPLES` intervals the model is unwarmed and
    :meth:`phi` returns ``None`` (callers fall back to fixed counting).
    """

    MIN_SAMPLES = 3

    def __init__(self, window: int = 32, min_std_us: float = 10.0):
        self.window = window
        self.min_std_us = min_std_us
        self._intervals: dict[str, deque] = {}
        self._last_arrival: dict[str, float] = {}

    def arrival(self, peer: str, now: float) -> None:
        """A counter advance for ``peer`` was observed at ``now``."""
        last = self._last_arrival.get(peer)
        if last is not None:
            self._intervals.setdefault(
                peer, deque(maxlen=self.window)
            ).append(now - last)
        self._last_arrival[peer] = now

    def forget(self, peer: str) -> None:
        self._intervals.pop(peer, None)
        self._last_arrival.pop(peer, None)

    def phi(self, peer: str, now: float) -> Optional[float]:
        dq = self._intervals.get(peer)
        if dq is None or len(dq) < self.MIN_SAMPLES:
            return None
        elapsed = now - self._last_arrival[peer]
        mean = sum(dq) / len(dq)
        var = sum((x - mean) ** 2 for x in dq) / len(dq)
        std = max(math.sqrt(var), self.min_std_us)
        p_later = 0.5 * math.erfc((elapsed - mean) / (std * math.sqrt(2.0)))
        return -math.log10(max(p_later, 1e-300))


class PeerHealth:
    """Healthy/degraded classification from one-sided op latency.

    Every successful one-sided op toward a peer (detector poll reads
    at a steady cadence, plus transport data-plane ops and broadcast
    fan-out completions) feeds :meth:`record`.  A peer is *degraded*
    once its latency EWMA exceeds its observed healthy floor (best
    single sample) by ``degraded_factor`` — the fail-slow signal a
    heartbeat counter can never carry — and *recovers* once the EWMA
    drops back under ``clear_factor`` times the floor.

    Degradation additionally requires the peer to be an *outlier
    relative to the other peers* (EWMA above ``degraded_factor`` times
    the median peer EWMA): a load spike at THIS node inflates observed
    latency toward everyone at once, and classifying the whole cluster
    as fail-slow would be self-diagnosis, not detection.  A genuinely
    slow link elevates exactly one peer against a quiet median.
    """

    def __init__(self, alpha: float = 0.2, degraded_factor: float = 3.0,
                 min_samples: int = 8, clear_factor: float = 1.5,
                 on_degraded: Optional[Callable[[str], None]] = None,
                 on_recovered: Optional[Callable[[str], None]] = None,
                 probe=None):
        self.alpha = alpha
        self.degraded_factor = degraded_factor
        self.min_samples = min_samples
        self.clear_factor = clear_factor
        self.on_degraded = on_degraded
        self.on_recovered = on_recovered
        self.probe = probe
        self.degraded: set[str] = set()
        self._ewma: dict[str, float] = {}
        self._best: dict[str, float] = {}
        self._count: dict[str, int] = {}

    def record(self, peer: str, latency_us: float) -> None:
        n = self._count.get(peer, 0) + 1
        self._count[peer] = n
        prev = self._ewma.get(peer)
        ewma = (
            latency_us if prev is None
            else self.alpha * latency_us + (1.0 - self.alpha) * prev
        )
        self._ewma[peer] = ewma
        best = self._best.get(peer)
        if best is None or latency_us < best:
            self._best[peer] = best = latency_us
        if n < self.min_samples:
            return
        if peer not in self.degraded:
            if (ewma > best * self.degraded_factor
                    and self._outlier(peer, ewma)):
                self.degraded.add(peer)
                if self.probe is not None:
                    self.probe.peer_degraded(peer)
                if self.on_degraded is not None:
                    self.on_degraded(peer)
        elif ewma < best * self.clear_factor:
            self.degraded.discard(peer)
            if self.on_recovered is not None:
                self.on_recovered(peer)

    def _outlier(self, peer: str, ewma: float) -> bool:
        """Elevated against the cluster, not just its own floor."""
        others = sorted(
            v for p, v in self._ewma.items() if p != peer
        )
        if not others:
            return True
        median = others[len(others) // 2]
        return ewma > self.degraded_factor * median

    def is_degraded(self, peer: str) -> bool:
        return peer in self.degraded

    def ewma_us(self, peer: str) -> Optional[float]:
        return self._ewma.get(peer)

    def rank(self, candidates: list[str]) -> list[str]:
        """Candidates ordered best-first by latency EWMA (unknown peers
        keep their input order, after the known-good ones)."""
        known = [c for c in candidates if c in self._ewma]
        unknown = [c for c in candidates if c not in self._ewma]
        return sorted(known, key=lambda c: self._ewma[c]) + unknown

    def forget(self, peer: str) -> None:
        self.degraded.discard(peer)
        self._ewma.pop(peer, None)
        self._best.pop(peer, None)
        self._count.pop(peer, None)


class FailureDetector:
    """Per-node detector polling every peer's heartbeat by remote read.

    ``mode="fixed"`` counts stale polls against ``suspect_after``
    (seed behaviour); ``mode="phi"`` accrues suspicion via
    :class:`PhiAccrual` (falling back to fixed counting until the
    per-peer model warms up) and feeds poll-read latencies into an
    optional :class:`PeerHealth` tracker.
    """

    def __init__(self, node: RdmaNode, peers: list[str],
                 poll_interval_us: float = 60.0, suspect_after: int = 3,
                 on_suspect: Optional[Callable[[str], None]] = None,
                 on_clear: Optional[Callable[[str], None]] = None,
                 mode: str = "fixed", phi_threshold: float = 8.0,
                 phi_window: int = 32, phi_min_std_us: float = 10.0,
                 health: Optional[PeerHealth] = None, probe=None):
        self.node = node
        self.env: Environment = node.env
        self.peers = [p for p in peers if p != node.name]
        self.poll_interval_us = poll_interval_us
        self.suspect_after = suspect_after
        self.on_suspect = on_suspect
        #: Fired when a previously suspected peer proves alive again
        #: (heals from a partition, restarts): the rejoin/catch-up hook.
        self.on_clear = on_clear
        self.mode = mode
        self.phi_threshold = phi_threshold
        self.phi = (
            PhiAccrual(window=phi_window, min_std_us=phi_min_std_us)
            if mode == "phi" else None
        )
        self.health = health
        self.probe = probe
        self.suspected: set[str] = set()
        #: Degraded pins: suspicion that a merely-advancing heartbeat
        #: counter must NOT clear (the peer is alive but limping).
        self.degraded: set[str] = set()
        self._last_seen: dict[str, int] = {p: 0 for p in self.peers}
        self._stale_polls: dict[str, int] = {p: 0 for p in self.peers}
        self._process = self.env.process(self._run(), name=f"fd:{node.name}")

    def is_suspected(self, peer: str) -> bool:
        return peer in self.suspected

    def is_degraded(self, peer: str) -> bool:
        return peer in self.degraded

    def mark_degraded(self, peer: str) -> None:
        """Pin ``peer`` suspected as *degraded* (fail-slow, not dead).

        Fires ``on_suspect`` (so demotion/campaign paths engage exactly
        as for a silent peer), but the pin survives counter advances —
        only :meth:`clear_degraded` lifts it.
        """
        if peer in self.degraded:
            return
        self.degraded.add(peer)
        if peer not in self.suspected:
            self.suspected.add(peer)
            if self.on_suspect is not None:
                self.on_suspect(peer)

    def clear_degraded(self, peer: str) -> None:
        """Lift a degraded pin; normal clearing resumes (the next
        counter advance un-suspects the peer and fires ``on_clear``)."""
        self.degraded.discard(peer)

    def add_peer(self, name: str) -> None:
        """Start polling a newly joined peer's heartbeat."""
        if name == self.node.name or name in self.peers:
            return
        self.peers = sorted([*self.peers, name])
        self._last_seen[name] = 0
        self._stale_polls[name] = 0

    def remove_peer(self, name: str) -> None:
        """Stop polling a departed peer and pin it *suspected*.

        The pin makes every "skip the dead" filter (repair sources,
        campaign candidate lists, control fan-outs) treat the departed
        node as permanently gone.  ``on_suspect`` is deliberately NOT
        fired — whether departure triggers an election is the membership
        layer's call, not the detector's.
        """
        if name not in self.peers:
            return
        self.peers.remove(name)
        self._last_seen.pop(name, None)
        self._stale_polls.pop(name, None)
        self.degraded.discard(name)
        if self.phi is not None:
            self.phi.forget(name)
        if self.health is not None:
            self.health.forget(name)
        self.suspected.add(name)

    def _run(self):
        while True:
            yield self.env.timeout(self.poll_interval_us)
            if not self.node.alive:
                continue
            for peer in self.peers:
                region = self.node.region_of(peer, HB_REGION)
                qp = self.node.qp_to(peer)
                started = self.env.now
                completion = yield from qp.read(region, 0, 8)
                if completion.status is not WcStatus.SUCCESS:
                    self._note_stale(peer)
                    continue
                if self.health is not None:
                    self.health.record(peer, self.env.now - started)
                count = int.from_bytes(completion.data, "little")
                if count > self._last_seen[peer]:
                    self._last_seen[peer] = count
                    self._stale_polls[peer] = 0
                    if self.phi is not None:
                        self.phi.arrival(peer, self.env.now)
                    if peer in self.suspected and peer not in self.degraded:
                        self.suspected.discard(peer)
                        if self.on_clear is not None:
                            self.on_clear(peer)
                else:
                    self._note_stale(peer)

    def _note_stale(self, peer: str) -> None:
        self._stale_polls[peer] += 1
        if peer in self.suspected:
            return
        if self.phi is not None:
            level = self.phi.phi(peer, self.env.now)
            if level is not None:
                # Warmed model: suspicion is probabilistic, not counted.
                if level >= self.phi_threshold:
                    self.suspected.add(peer)
                    if self.probe is not None:
                        self.probe.phi_suspect(peer)
                    if self.on_suspect is not None:
                        self.on_suspect(peer)
                return
        if self._stale_polls[peer] >= self.suspect_after:
            self.suspected.add(peer)
            if self.on_suspect is not None:
                self.on_suspect(peer)
