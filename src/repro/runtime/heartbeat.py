"""Heartbeats and failure detection (paper §4 "RDMA Reliable Broadcast").

Each node runs a heartbeat thread that increments a local counter in a
registered region; peers periodically *remote-read* the counter and
suspect the node when it stops advancing.  Failure injection in the
paper's experiments suspends the heartbeat thread — :meth:`suspend`
reproduces that exactly, leaving the node's other threads running.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..rdma import Access, RdmaNode, WcStatus
from ..sim import Environment

__all__ = ["FailureDetector", "Heartbeat"]

HB_REGION = "hamband:heartbeat"


class Heartbeat:
    """The local heartbeat thread of one node."""

    def __init__(self, node: RdmaNode, interval_us: float = 20.0):
        self.node = node
        self.env: Environment = node.env
        self.interval_us = interval_us
        self.region = node.register(
            HB_REGION, 8, access=Access.LOCAL | Access.REMOTE_READ
        )
        self.suspended = False
        self._process = self.env.process(self._run(), name=f"hb:{node.name}")

    def suspend(self) -> None:
        """Failure injection: stop the counter, as the paper does."""
        self.suspended = True

    def resume(self) -> None:
        self.suspended = False

    def _run(self):
        count = 0
        while True:
            if not self.suspended and self.node.alive:
                count += 1
                self.region.write_u64(0, count)
            yield self.env.timeout(self.interval_us)


class FailureDetector:
    """Per-node detector polling every peer's heartbeat by remote read."""

    def __init__(self, node: RdmaNode, peers: list[str],
                 poll_interval_us: float = 60.0, suspect_after: int = 3,
                 on_suspect: Optional[Callable[[str], None]] = None,
                 on_clear: Optional[Callable[[str], None]] = None):
        self.node = node
        self.env: Environment = node.env
        self.peers = [p for p in peers if p != node.name]
        self.poll_interval_us = poll_interval_us
        self.suspect_after = suspect_after
        self.on_suspect = on_suspect
        #: Fired when a previously suspected peer proves alive again
        #: (heals from a partition, restarts): the rejoin/catch-up hook.
        self.on_clear = on_clear
        self.suspected: set[str] = set()
        self._last_seen: dict[str, int] = {p: 0 for p in self.peers}
        self._stale_polls: dict[str, int] = {p: 0 for p in self.peers}
        self._process = self.env.process(self._run(), name=f"fd:{node.name}")

    def is_suspected(self, peer: str) -> bool:
        return peer in self.suspected

    def add_peer(self, name: str) -> None:
        """Start polling a newly joined peer's heartbeat."""
        if name == self.node.name or name in self.peers:
            return
        self.peers = sorted([*self.peers, name])
        self._last_seen[name] = 0
        self._stale_polls[name] = 0

    def remove_peer(self, name: str) -> None:
        """Stop polling a departed peer and pin it *suspected*.

        The pin makes every "skip the dead" filter (repair sources,
        campaign candidate lists, control fan-outs) treat the departed
        node as permanently gone.  ``on_suspect`` is deliberately NOT
        fired — whether departure triggers an election is the membership
        layer's call, not the detector's.
        """
        if name not in self.peers:
            return
        self.peers.remove(name)
        self._last_seen.pop(name, None)
        self._stale_polls.pop(name, None)
        self.suspected.add(name)

    def _run(self):
        while True:
            yield self.env.timeout(self.poll_interval_us)
            if not self.node.alive:
                continue
            for peer in self.peers:
                region = self.node.region_of(peer, HB_REGION)
                qp = self.node.qp_to(peer)
                completion = yield from qp.read(region, 0, 8)
                if completion.status is not WcStatus.SUCCESS:
                    self._note_stale(peer)
                    continue
                count = int.from_bytes(completion.data, "little")
                if count > self._last_seen[peer]:
                    self._last_seen[peer] = count
                    self._stale_polls[peer] = 0
                    if peer in self.suspected:
                        self.suspected.discard(peer)
                        if self.on_clear is not None:
                            self.on_clear(peer)
                else:
                    self._note_stale(peer)

    def _note_stale(self, peer: str) -> None:
        self._stale_polls[peer] += 1
        if (
            self._stale_polls[peer] >= self.suspect_after
            and peer not in self.suspected
        ):
            self.suspected.add(peer)
            if self.on_suspect is not None:
                self.on_suspect(peer)
