"""Sharded keyspace: many independent Hamband clusters, one directory.

The paper's runtime replicates a *single* object per cluster.  The
north-star deployment is a keyed store far too large for one
synchronization domain, so this module partitions the keyspace across N
independent :class:`~repro.runtime.HambandCluster` shards — each with
its own F/L rings, sync groups, and Mu instance — built over one shared
simulation :class:`~repro.sim.Environment`:

- :class:`ShardRouter` — the deterministic directory.  Seeded
  consistent hashing (a fixed ring of virtual nodes per shard, hashed
  with :mod:`hashlib` so the mapping is stable across processes and
  Python hash randomization) plus explicit per-key pinning for tests.
- :class:`ShardedCluster` — the facade: builds the shards from ONE
  coordination analysis (the object spec is shared; only the keyspace
  is partitioned), addresses nodes as ``"s<shard>/p<node>"``, and
  re-exposes the cluster surface the drivers/chaos layers rely on
  (quiesce, stats, convergence, fault injection) per shard and
  globally.

Cross-shard *transactions* over this topology live in
:mod:`repro.runtime.txn`; the commit-path design follows SafarDB
(see PAPERS.md): RDT commutativity decides which call-sets need any
cross-shard coordination at all.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Any, Callable, Optional, Union

from ..core import Coordination, ObjectSpec
from ..rdma import RdmaConfig
from ..sim import Environment
from .cluster import HambandCluster
from .node import HambandNode, RuntimeConfig
from .probe import rollup_node_stats

__all__ = ["ShardRouter", "ShardedCluster"]


def _point(seed: int, label: str) -> int:
    """A stable 64-bit hash-ring coordinate for ``label``.

    Built on blake2b, NOT the builtin ``hash`` — per-process hash
    randomization would re-shuffle the directory every run.
    """
    digest = hashlib.blake2b(
        f"{seed}:{label}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Deterministic key → shard directory (seeded consistent hashing).

    Each shard owns ``vnodes`` points on a 64-bit hash ring; a key maps
    to the shard owning the first point at or after the key's hash.
    The same ``(n_shards, seed)`` always yields the same directory.
    ``pin`` overrides the ring for individual keys (tests use this to
    force cross-shard or same-shard layouts).
    """

    def __init__(self, n_shards: int, seed: int = 0, vnodes: int = 64):
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.n_shards = n_shards
        self.seed = seed
        self.vnodes = vnodes
        self._pins: dict[Any, int] = {}
        ring = [
            (_point(seed, f"shard:{shard}:vnode:{v}"), shard)
            for shard in range(n_shards)
            for v in range(vnodes)
        ]
        ring.sort()
        self._points = [point for point, _shard in ring]
        self._owners = [shard for _point, shard in ring]

    def shard_of(self, key: Any) -> int:
        """The shard owning ``key`` (pin wins over the ring)."""
        pinned = self._pins.get(key)
        if pinned is not None:
            return pinned
        point = _point(self.seed, f"key:{key!r}")
        index = bisect.bisect_left(self._points, point)
        if index == len(self._points):
            index = 0  # wrap: past the last point owns back to the first
        return self._owners[index]

    def pin(self, key: Any, shard: int) -> None:
        """Force ``key`` onto ``shard`` regardless of the ring."""
        if not 0 <= shard < self.n_shards:
            raise ValueError(
                f"shard {shard} out of range [0, {self.n_shards})"
            )
        self._pins[key] = shard

    def unpin(self, key: Any) -> None:
        self._pins.pop(key, None)

    def distribution(self, keys) -> dict[int, int]:
        """How many of ``keys`` land on each shard (all shards keyed)."""
        counts = {shard: 0 for shard in range(self.n_shards)}
        for key in keys:
            counts[self.shard_of(key)] += 1
        return counts


class ShardedCluster:
    """N independent Hamband shards of one object spec, plus routing.

    All shards replicate the *same* data type (one coordination
    analysis shared by every shard); the keyspace is what's
    partitioned.  Nodes are addressed ``"s<shard>/p<node>"`` anywhere a
    single cluster would take a bare node name — the fault surface and
    stats keep the same shapes as :class:`HambandCluster`, grouped by
    shard.
    """

    def __init__(self, env: Environment, coordination: Coordination,
                 shards: list[HambandCluster], router: ShardRouter):
        if len(shards) != router.n_shards:
            raise ValueError(
                f"router covers {router.n_shards} shards, got {len(shards)}"
            )
        self.env = env
        self.coordination = coordination
        self.shards = shards
        self.router = router

    @classmethod
    def build(cls, env: Environment,
              spec_or_coordination: Union[ObjectSpec, Coordination],
              n_shards: int, n_nodes: int = 3,
              config: Optional[RuntimeConfig] = None,
              rdma_config: Optional[RdmaConfig] = None,
              cpu_cores: int = 2,
              leaders: Optional[dict[str, str]] = None,
              shard_probe_factory: Optional[
                  Callable[[int], Callable[[str], Any]]
              ] = None,
              router: Optional[ShardRouter] = None,
              seed: int = 0) -> "ShardedCluster":
        """Construct ``n_shards`` fully wired ``n_nodes``-node shards.

        The coordination analysis runs once and is shared.
        ``shard_probe_factory(shard_index)`` returns the per-node probe
        factory for that shard (see
        :meth:`~repro.runtime.trace.ShardedRecorder.probe_factory_for`)
        — per-shard factories keep probes apart even though every shard
        names its nodes ``p1..pn``.
        """
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if isinstance(spec_or_coordination, Coordination):
            coordination = spec_or_coordination
        else:
            coordination = Coordination.analyze(spec_or_coordination)
        shards = [
            HambandCluster.build(
                env,
                coordination,
                n_nodes=n_nodes,
                config=config,
                rdma_config=rdma_config,
                cpu_cores=cpu_cores,
                leaders=dict(leaders) if leaders else None,
                probe_factory=(
                    shard_probe_factory(index) if shard_probe_factory
                    else None
                ),
            )
            for index in range(n_shards)
        ]
        return cls(
            env, coordination, shards,
            router or ShardRouter(n_shards, seed=seed),
        )

    # -- addressing ------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard(self, index: int) -> HambandCluster:
        return self.shards[index]

    def shard_of(self, key: Any) -> int:
        return self.router.shard_of(key)

    def shard_for(self, key: Any) -> HambandCluster:
        return self.shards[self.router.shard_of(key)]

    @staticmethod
    def split_address(address: str) -> tuple[int, str]:
        """``"s2/p1"`` → ``(2, "p1")``."""
        shard_part, _, node = address.partition("/")
        if not node or not shard_part.startswith("s"):
            raise ValueError(
                f"expected an 's<shard>/<node>' address, got {address!r}"
            )
        return int(shard_part[1:]), node

    def node(self, address: str) -> HambandNode:
        shard, name = self.split_address(address)
        if not 0 <= shard < len(self.shards):
            raise ValueError(
                f"no shard s{shard} in a {len(self.shards)}-shard cluster"
            )
        return self.shards[shard].node(name)

    def node_names(self) -> list[str]:
        return [
            f"s{index}/{name}"
            for index, shard in enumerate(self.shards)
            for name in shard.node_names()
        ]

    # -- measurement -----------------------------------------------------

    def applied_totals(self) -> dict[str, int]:
        return {
            f"s{index}/{name}": total
            for index, shard in enumerate(self.shards)
            for name, total in shard.applied_totals().items()
        }

    def stats(self) -> dict[str, dict]:
        """Per-shard stats (each with its own rollup) plus a global one.

        ``stats()["s2"]`` is shard 2's :meth:`HambandCluster.stats`
        (per-node snapshots + ``"cluster"`` rollup); ``stats()
        ["global"]`` aggregates the shard rollups with the same
        counters-summed / high-water-maxed rules — the rollup helper is
        shared, not re-implemented (see
        :func:`~repro.runtime.probe.rollup_node_stats`).
        """
        per_shard = {
            f"s{index}": shard.stats()
            for index, shard in enumerate(self.shards)
        }
        per_shard["global"] = rollup_node_stats({
            label: stats["cluster"] for label, stats in per_shard.items()
        })
        return per_shard

    def quiesce(self, targets: Union[int, dict[int, int]],
                check_every_us: float = 5.0,
                timeout_us: float = 1_000_000.0):
        """Process: wait until every shard reflects its update target.

        ``targets`` is either one total applied to every shard or a
        ``{shard_index: total}`` mapping (shards drive different call
        counts under a keyed workload).  The shared timeout covers the
        whole topology.
        """
        if isinstance(targets, int):
            targets = {index: targets for index in range(self.n_shards)}
        deadline = self.env.now + timeout_us
        for index in sorted(targets):
            remaining = max(deadline - self.env.now, 0.0)
            yield from self.shards[index].quiesce(
                targets[index],
                check_every_us=check_every_us,
                timeout_us=remaining,
            )
        return self.env.now

    def converged(self) -> bool:
        return all(shard.converged() for shard in self.shards)

    def integrity_holds(self) -> bool:
        return all(shard.integrity_holds() for shard in self.shards)

    def failures(self) -> list[str]:
        return [
            f"s{index}/{failure}"
            for index, shard in enumerate(self.shards)
            for failure in shard.failures()
        ]

    # -- failure injection ----------------------------------------------
    #
    # Same verbs as HambandCluster, taking "s<shard>/<node>" addresses;
    # partitions and heals are per shard (shards share no fabric, so a
    # cross-shard partition is meaningless).

    def suspend_heartbeat(self, address: str) -> None:
        shard, name = self.split_address(address)
        self.shards[shard].suspend_heartbeat(name)

    def crash(self, address: str) -> None:
        shard, name = self.split_address(address)
        self.shards[shard].crash(name)

    def restart(self, address: str, catch_up: bool = True) -> None:
        shard, name = self.split_address(address)
        self.shards[shard].restart(name, catch_up=catch_up)

    def add_node(self, address: str, cpu_cores: int = 2,
                 transfer: bool = True, barrier: bool = True,
                 wire_version: Optional[int] = None) -> HambandNode:
        """Scale-out one shard: ``"s2/p4"`` joins p4 into shard 2."""
        shard, name = self.split_address(address)
        return self.shards[shard].add_node(
            name, cpu_cores=cpu_cores, transfer=transfer,
            barrier=barrier, wire_version=wire_version,
        )

    def remove_node(self, address: str) -> HambandNode:
        """Scale-in one shard (leader removal forces re-election)."""
        shard, name = self.split_address(address)
        return self.shards[shard].remove_node(name)

    def partition(self, shard: int, side_a: list[str],
                  side_b: list[str]) -> None:
        self.shards[shard].partition(side_a, side_b)

    def heal(self, shard: Optional[int] = None) -> None:
        if shard is not None:
            self.shards[shard].heal()
            return
        for each in self.shards:
            each.heal()
