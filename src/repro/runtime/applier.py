"""Layer 2 — buffered-call application (paper §4, Fig. 7 transitions).

:class:`ApplyEngine` owns the replicated-object *state* of one node and
every rule that mutates it:

- the stored state ``σ`` and the applied-calls map ``A``,
- the dedup set of applied call keys,
- the summary mirror and summary-slot readers (``S``),
- dependency projection (``A | Dep(u)``) and dependency checks,
- permissibility (the invariant folded over the summaries),
- the REDUCE / FREE / QUERY request paths,
- the buffer-traversal loop that drives the transport's F drains, the
  conflict coordinator's L drains, and the recovered-call queue.

It deliberately knows nothing about ring layouts (transport), leaders
(conflict), or control messages (control): those layers are handed in
through :meth:`bind` by the façade, and every state transition funnels
through :meth:`log_event`, where the instrumentation probe counts
per-rule applies.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from ..core import Call, Category, ConcreteEvent, Coordination
from ..core.rdma_semantics import DependencyMap
from ..rdma import RdmaNode, WcStatus
from .config import RuntimeConfig, s_region
from .errors import ImpermissibleError
from .probe import RuntimeProbe
from .ringbuffer import RingCorruptionError, RingError
from .summary import (
    SummarySlot,
    current_record_bytes,
    render_summary,
    slot_size_for,
)
from .wire import WireCodec

__all__ = ["ApplyEngine"]


class ApplyEngine:
    """σ, A, S and the machinery that advances them at one node."""

    def __init__(self, rnode: RdmaNode, coordination: Coordination,
                 config: RuntimeConfig, event_log: list,
                 probe: Optional[RuntimeProbe] = None,
                 counters: Optional[dict[str, int]] = None,
                 codec: Optional[WireCodec] = None):
        self.rnode = rnode
        self.env = rnode.env
        self.name = rnode.name
        self.coordination = coordination
        self.spec = coordination.spec
        self.processes: list[str] = []  # filled by the summary init
        self.config = config
        self.event_log = event_log
        self.probe = probe or RuntimeProbe()
        self.counters = counters if counters is not None else {}
        self.codec = codec or WireCodec(config.wire_version)

        self.sigma = self.spec.initial_state()
        #: A — applied counts for buffered (F/L) calls, incl. our own.
        self.applied: dict[tuple[str, str], int] = {}
        #: Call keys applied via buffers or recovery, for dedup.
        self.seen: set[tuple[str, int]] = set()
        self._rid = itertools.count(1)
        #: Recovered-from-backup calls awaiting their dependencies.
        self.pending_recovered: list[tuple[Call, DependencyMap]] = []
        # Collaborators, wired by the façade via bind().
        self.transport = None
        self.conflict = None
        self.broadcast = None
        self.is_suspected: Callable[[str], bool] = lambda peer: False

    def init_summaries(self, processes: list[str]) -> None:
        """Build summary-slot readers over the registered S regions.

        Requires the transport (or a test harness) to have registered
        the ``s_region`` memory regions first.
        """
        self.processes = sorted(processes)
        summary_size = slot_size_for(self.config.summary_payload)
        self.summary_readers: dict[tuple[str, str], SummarySlot] = {}
        #: Our in-memory mirror: group -> (seq, summary call, counts).
        self.summary_mirror: dict[str, tuple[int, Call, dict[str, int]]] = {}
        for summarizer in self.spec.summarizers:
            for owner in self.processes:
                region = self.rnode.regions[s_region(summarizer.group, owner)]
                self.summary_readers[(summarizer.group, owner)] = SummarySlot(
                    region, 0, summary_size, codec=self.codec
                )
            self.summary_mirror[summarizer.group] = (
                0,
                summarizer.identity(self.name),
                {},
            )

    def add_process(self, name: str) -> None:
        """Rewire the apply layer for a newly joined process.

        The transport must have registered the new ``s_region`` memory
        regions first (``RingTransport.add_peer``).  There is no
        ``remove_process``: a departed node's summary slots and applied
        counts are kept — dependency arrays already in flight reference
        its counts, and frozen state is consistent on both sides of
        every dependency check.
        """
        if name in self.processes:
            return
        self.processes = sorted([*self.processes, name])
        summary_size = slot_size_for(self.config.summary_payload)
        for summarizer in self.spec.summarizers:
            region = self.rnode.regions[s_region(summarizer.group, name)]
            self.summary_readers[(summarizer.group, name)] = SummarySlot(
                region, 0, summary_size, codec=self.codec
            )

    def bind(self, transport, conflict, broadcast,
             is_suspected: Callable[[str], bool]) -> None:
        """Wire the sibling layers (composition root: the façade)."""
        self.transport = transport
        self.conflict = conflict
        self.broadcast = broadcast
        self.is_suspected = is_suspected

    # -- call/event bookkeeping ------------------------------------------

    def next_rid(self) -> int:
        return next(self._rid)

    def make_call(self, method: str, arg: Any) -> Call:
        return Call(method, arg, self.name, self.next_rid())

    def log_event(self, rule: str, call: Call) -> ConcreteEvent:
        event = ConcreteEvent(rule, self.name, call, at=self.env.now)
        self.event_log.append(event)
        self.probe.apply(rule)
        return event

    def category(self, method: str) -> Category:
        category = self.coordination.category(method)
        if self.config.force_buffered and category is Category.REDUCIBLE:
            return Category.IRREDUCIBLE_CONFLICT_FREE
        return category

    # -- state views -----------------------------------------------------

    def effective_state(self) -> Any:
        """``Apply(S)(σ)``: summaries folded over the stored state."""
        sigma = self.sigma
        for (_group, _owner), slot in self.summary_readers.items():
            value = slot.read()
            if value is not None:
                sigma = self.spec.apply_call(value[0], sigma)
        return sigma

    def applied_count(self, process: str, method: str) -> int:
        """A(p, u), consulting summary slots for reducible methods."""
        if self.category(method) is Category.REDUCIBLE:
            summarizer = self.spec.summarizer_of(method)
            slot = self.summary_readers[(summarizer.group, process)]
            return slot.applied_count(method)
        return self.applied.get((process, method), 0)

    def applied_total(self) -> int:
        """Total update calls reflected at this node (A summed)."""
        total = sum(self.applied.values())
        for slot in self.summary_readers.values():
            value = slot.read()
            if value is not None:
                total += sum(value[1].values())
        return total

    def invariant_with_summaries(self, sigma: Any) -> bool:
        state = sigma
        for slot in self.summary_readers.values():
            value = slot.read()
            if value is not None:
                state = self.spec.apply_call(value[0], state)
        return bool(self.spec.invariant(state))

    # -- dependency arrays -----------------------------------------------

    def dep_projection(self, method: str,
                       overlay: Optional[dict] = None) -> DependencyMap:
        """``A | Dep(u)``, plus the batch's speculative counts."""
        if self.config.full_dep_barrier:
            dep_methods = list(self.spec.updates)
        else:
            dep_methods = self.coordination.dep(method)
        dep: DependencyMap = {}
        for dep_method in dep_methods:
            for process in self.processes:
                count = self.applied_count(process, dep_method)
                if overlay:
                    count += overlay.get((process, dep_method), 0)
                if count:
                    dep[(process, dep_method)] = count
        return dep

    def dep_ok(self, dep: DependencyMap) -> bool:
        return all(
            self.applied_count(process, method) >= need
            for (process, method), need in dep.items()
        )

    def bump_applied(self, process: str, method: str) -> None:
        key = (process, method)
        self.applied[key] = self.applied.get(key, 0) + 1

    def has_seen(self, key: tuple[str, int]) -> bool:
        return key in self.seen

    # -- applying buffered calls -----------------------------------------

    def apply(self, call: Call, rule: str):
        """Generator: pay the apply CPU cost, then commit the call."""
        self.probe.span_begin("apply", call.method, call.origin, call.rid)
        yield from self.rnode.cpu.use(self.config.apply_cpu_us)
        self.apply_buffered(call, rule)
        self.probe.span_end("apply", call.method, call.origin, call.rid)

    def apply_buffered(self, call: Call, rule: str) -> None:
        self.counters["buffer_applied"] = (
            self.counters.get("buffer_applied", 0) + 1
        )
        self.sigma = self.spec.apply_call(call, self.sigma)
        self.bump_applied(call.origin, call.method)
        self.seen.add(call.key())
        self.log_event(rule, call)
        self.probe.trace_apply(
            rule, call.method, call.origin, call.rid, call.arg
        )

    def add_recovered(self, call: Call, dep: DependencyMap) -> None:
        self.pending_recovered.append((call, dep))

    def drain_recovered(self):
        progressed = False
        remaining = []
        for call, dep in self.pending_recovered:
            if call.key() in self.seen:
                continue
            if self.dep_ok(dep):
                yield from self.apply(call, "FREE_APP")
                self.counters["recovered_applied"] = (
                    self.counters.get("recovered_applied", 0) + 1
                )
                self.probe.recovered()
                progressed = True
            else:
                remaining.append((call, dep))
        self.pending_recovered = remaining
        return progressed

    # -- request paths (cases 1-3) ---------------------------------------

    def do_query(self, method: str, arg: Any):
        yield from self.rnode.cpu.use(self.config.query_cpu_us)
        self.counters["queries"] = self.counters.get("queries", 0) + 1
        self.probe.apply("QUERY")
        self.probe.trace_apply("QUERY", method, self.name, 0, arg)
        return self.spec.run_query(method, arg, self.effective_state())

    # Case 2: reducible — summarize locally, one remote write per peer.
    def do_reduce(self, method: str, arg: Any):
        yield from self.rnode.cpu.use(self.config.local_cpu_us)
        call = self.make_call(method, arg)
        self.probe.span_begin("invoke", method, call.origin, call.rid)
        state = self.effective_state()
        if not self.spec.invariant(self.spec.apply_call(call, state)):
            self.probe.span_end("invoke", method, call.origin, call.rid)
            self.probe.rejected("impermissible")
            raise ImpermissibleError(f"{call} violates the invariant")
        summarizer = self.spec.summarizer_of(method)
        seq, current, counts = self.summary_mirror[summarizer.group]
        combined = summarizer.combine(current, call)
        counts = dict(counts)
        counts[method] = counts.get(method, 0) + 1
        seq += 1
        self.summary_mirror[summarizer.group] = (seq, combined, counts)
        slot_bytes = render_summary(
            seq, combined, counts,
            slot_size_for(self.config.summary_payload),
            codec=self.codec,
        )
        region_name = s_region(summarizer.group, self.name)
        # Local install first (the REDUCE transition's own-process part).
        self.rnode.regions[region_name].write(0, slot_bytes)
        self.log_event("REDUCE", call)
        self.probe.trace_apply("REDUCE", method, call.origin, call.rid, arg)
        self.probe.span_end("invoke", method, call.origin, call.rid)
        self.counters["reduced"] = self.counters.get("reduced", 0) + 1
        own_region = self.rnode.regions[region_name]
        # A retried summary write re-renders the region's CURRENT bytes
        # (used prefix only), so it never replaces a newer summary with
        # a stale one and never ships the whole reserved region.
        writes = [
            (
                self.rnode.qp_to(peer),
                self.rnode.region_of(peer, region_name),
                0,
                lambda region=own_region: current_record_bytes(region),
            )
            for peer in self.transport.peers
        ]
        message = self.codec.encode_value(("S", summarizer.group, slot_bytes))
        self.probe.span_begin("propagate", method, call.origin, call.rid)
        self.probe.trace_transfer(
            f"S:{summarizer.group}", method, call.origin, call.rid,
            len(slot_bytes),
        )
        yield from self.broadcast.broadcast(
            message, writes, is_suspected=self.is_suspected,
            piggyback=self._due_ack_piggyback(),
            skip_suspected=self.config.fd_mode == "phi",
        )
        self.probe.span_end("propagate", method, call.origin, call.rid)
        return call

    # Case 3: irreducible conflict-free — local apply + F-ring fan-out.
    def do_free(self, method: str, arg: Any):
        yield from self.rnode.cpu.use(self.config.local_cpu_us)
        call = self.make_call(method, arg)
        self.probe.span_begin("invoke", method, call.origin, call.rid)
        post_sigma = self.spec.apply_call(call, self.sigma)
        if not self.invariant_with_summaries(post_sigma):
            self.probe.span_end("invoke", method, call.origin, call.rid)
            self.probe.rejected("impermissible")
            raise ImpermissibleError(f"{call} violates the invariant")
        dep = self.dep_projection(method)
        self.sigma = post_sigma
        self.bump_applied(self.name, method)
        self.seen.add(call.key())
        self.log_event("FREE", call)
        self.probe.trace_apply("FREE", method, call.origin, call.rid, arg)
        self.probe.span_end("invoke", method, call.origin, call.rid)
        self.counters["freed"] = self.counters.get("freed", 0) + 1
        packet = self.codec.encode_call_packet(call, dep)
        self.probe.span_begin("propagate", method, call.origin, call.rid)
        self.probe.trace_transfer(
            "F", method, call.origin, call.rid, len(packet)
        )
        writes = yield from self.transport.prepare_f_writes(
            packet, self.is_suspected
        )
        message = self.codec.encode_value(("F", packet))
        # Due flow-control acks coalesce onto this fan-out's doorbell
        # batch instead of paying their own post later.
        yield from self.broadcast.broadcast(
            message, writes, is_suspected=self.is_suspected,
            piggyback=self._due_ack_piggyback(),
            skip_suspected=self.config.fd_mode == "phi",
        )
        self.probe.span_end("propagate", method, call.origin, call.rid)
        return call

    def _due_ack_piggyback(self) -> list:
        """Flow-control acks due now, rendered as piggyback writes."""
        if not self.config.ack_every or self.conflict is None:
            return []
        return self.transport.piggyback_ack_writes(self.conflict.leader_of)

    # -- buffer traversal ------------------------------------------------

    def poll_loop(self):
        """Adaptive poller: hot after progress, exponential idle backoff.

        Each empty sweep multiplies the idle wait by ``poll_backoff`` up
        to ``max(poll_idle_max_us, poll_interval_us)`` (the ``max`` keeps
        configs whose base interval already exceeds the cap honest); any
        progress snaps the wait back down to ``poll_interval_us``.
        """
        cfg = self.config
        idle_us = cfg.poll_interval_us
        idle_cap = max(cfg.poll_idle_max_us, cfg.poll_interval_us)
        while True:
            progressed = False
            if self.rnode.alive:
                progressed = yield from self.traverse_once()
            if progressed:
                idle_us = cfg.poll_interval_us
                yield self.env.timeout(cfg.poll_hot_us)
            else:
                yield self.env.timeout(idle_us)
                idle_us = min(idle_us * cfg.poll_backoff, idle_cap)

    def traverse_once(self):
        progressed = False
        for origin, reader in self.transport.f_readers.items():
            try:
                ring_progressed = yield from self.transport.drain(
                    reader, "FREE_APP", self, label=f"F<-{origin}"
                )
            except RingCorruptionError as corrupt:
                # A checksummed record failed CRC: a bitflipped or torn
                # one-sided write landed.  Quarantine the slot and
                # refetch it from an authoritative copy — detection
                # without delivery, repair without restart.
                ring_progressed = yield from self.transport.repair_corrupt_f(
                    origin, corrupt.index, self.is_suspected
                )
            except RingError:
                # Lapped while cut off: fast-forward past the
                # overwritten window (recovered out of band) and
                # resume from the writer's surviving records.
                ring_progressed = yield from self.transport.resync_lapped_f(
                    origin, self.is_suspected
                )
            if ring_progressed:
                self.transport.reset_f_misses(origin)
            else:
                # Empty sweep: let the transport's hole detector decide
                # whether a lost write is blocking this ring.
                ring_progressed = yield from self.transport.maybe_repair_f(
                    origin, self.is_suspected
                )
            progressed |= ring_progressed
        for gid in self.transport.l_readers:
            progressed |= yield from self.conflict.drain_l(gid)
        if self.pending_recovered:
            progressed |= yield from self.drain_recovered()
        if self.config.ack_every:
            yield from self.transport.flush_acks(self.conflict.leader_of)
        return progressed

    # -- recovery: summary catch-up --------------------------------------

    def pull_summaries(self, owners: Optional[list[str]] = None):
        """One-sided reads of peers' summary slots, adopting any copy
        strictly newer (higher seq) than ours — the summary-transfer
        half of the rejoin/catch-up path.

        ``owners`` restricts which processes' slots to refresh (e.g. a
        single peer just cleared of suspicion); None refreshes all.
        """
        summary_size = slot_size_for(self.config.summary_payload)
        refreshed = 0
        for summarizer in self.spec.summarizers:
            for owner in self.processes:
                if owner == self.name:
                    continue
                if owners is not None and owner not in owners:
                    continue
                region_name = s_region(summarizer.group, owner)
                local = self.rnode.regions[region_name]
                for source in self._summary_sources(owner):
                    qp = self.rnode.qp_to(source)
                    remote = self.rnode.region_of(source, region_name)
                    wc = yield from qp.read(remote, 0, summary_size)
                    if wc.status is not WcStatus.SUCCESS or not wc.data:
                        continue
                    remote_seq = int.from_bytes(wc.data[:8], "little")
                    local_seq = int.from_bytes(local.read(0, 8), "little")
                    if remote_seq > local_seq:
                        local.write(0, wc.data)
                        refreshed += 1
                    break  # first reachable source wins
        return refreshed

    def _summary_sources(self, owner: str) -> list[str]:
        """Sources to read ``owner``'s summary from: the owner itself
        (authoritative), then any other live, unsuspected peer."""
        others = [
            p for p in self.processes if p not in (self.name, owner)
        ]
        candidates = [owner] + others
        return [
            p for p in candidates
            if self.rnode.fabric.nodes[p].alive and not self.is_suspected(p)
        ]
