"""Authoritative state transfer: one catch-up engine for every path.

Before this module existed the runtime had three half-overlapping
catch-up paths — the restart rejoin, the partition-heal resync, and the
summary pull — and the heal path had a real convergence bug: a minority
node partitioned across a leader change kept granting the *old* leader
write permission on the Mu log channels (permissions only flip on
``vote_req``/``leader_is`` control messages it never received), so
leader-ordered records decided after the heal bounced off it forever.

:class:`StateTransfer` unifies all of them.  One ``run()`` pass:

1. **Leader re-discovery** (``barrier=True``): ask reachable peers who
   leads each synchronization group.  The ``leader_is`` replies flow
   through Mu's control handler, which re-grants the current leader's
   write permission — this is what closes the L-ring gap.  The
   discovery is armed as *authoritative* (see
   :meth:`~repro.consensus.mu.MuGroup.expect_authoritative_leader`):
   a rejoining minority's failed campaigns may have inflated its term
   past the cluster's real one, and the guard that normally rejects
   older-term ``leader_is`` replies must not reject the truth.
2. **Bulk install of the committed at-rest prefix.**  For every source
   ring the worker walks from the local reader head and fills holes
   with *windowed* one-sided reads of an authoritative copy (the
   scrubber's read idiom — one ``qp.read`` covers up to
   :data:`_WINDOW` slots), falling back to the transport's per-slot
   multi-source repair for records the primary source lacks.  The
   leader-ordered L log is bulk-read the same way through Mu's
   ``self_repair`` (its windowed cache *is* the L bulk path), and
   summary slots are refreshed with the apply engine's pull.
3. **Frontier barrier** (``barrier=True``): the per-ring frontiers
   captured in step 2 become targets; the worker waits (bounded — it
   never wedges on a dependency that cannot arrive) until the node has
   *applied* up to every target before the caller flips it live.

``HambandNode.rejoin`` (restart), ``HambandNode._catch_up_from``
(partition heal / resync), and :func:`~repro.runtime.membership.
join_cluster` (elastic scale-out) all delegate here, so the three
lifecycles cannot drift again.
"""

from __future__ import annotations

from typing import Optional

from ..rdma import WcStatus
from .config import f_region
from .ringbuffer import parse_record

__all__ = ["StateTransfer"]

#: Ring slots fetched per one-sided read while bulk-filling (the
#: scrubber/Mu window idiom: bounded reads, not whole ring regions).
_WINDOW = 64


class StateTransfer:
    """One catch-up pass over a :class:`~repro.runtime.node.HambandNode`.

    The engine is deliberately stateless between runs: construct one
    per pass (``StateTransfer(node).run(...)``) and drive it as a
    simulation process.
    """

    def __init__(self, node):
        self.node = node

    # -- the pass --------------------------------------------------------

    def run(self, sources: Optional[list[str]] = None,
            barrier: bool = True, reason: str = "state-transfer"):
        """Generator: catch this node up from authoritative copies.

        ``sources`` restricts which peers' F rings (and summary slots)
        to transfer — the heal path passes the single peer that just
        cleared; None transfers from everyone (restart / join).
        ``barrier=False`` skips leader re-discovery and the frontier
        barrier (the negative-control knob: a joiner flipped live
        without the barrier is provably behind).  ``reason`` is the
        label reported through ``probe.catch_up`` — callers preserve
        the historical labels (peer name for heals, ``"restart"`` for
        rejoins, ``"join"`` for scale-out).
        """
        node = self.node
        transport = node.transport
        is_suspected = node.detector.is_suspected
        origins = list(sources) if sources is not None else list(
            transport.peers
        )
        if barrier:
            # Phase 1: re-learn who leads.  The replies re-grant the
            # current leader's Mu write permission at this node — the
            # partitioned-minority L-ring fix.
            for gid in node.conflict.mu_groups:
                yield from node.conflict.discover_leader(gid)
        # Phase 2: bulk-install the committed at-rest prefix.
        f_targets: dict[str, int] = {}
        for origin in origins:
            reader = transport.f_readers.get(origin)
            if reader is None:
                continue
            yield from self._fill_f_ring(origin)
            # Multi-source per-slot fallback for records the primary
            # source lacked (it may itself hold holes).
            yield from transport.repair_f_ring(origin, is_suspected)
            f_targets[origin] = self._local_frontier(reader)
        yield from node.applier.pull_summaries(sources)
        l_targets: dict[str, int] = {}
        for gid, mu in node.conflict.mu_groups.items():
            if mu.leader == node.name:
                continue
            # Mu's self-repair is the L bulk path: windowed one-sided
            # reads of reachable log copies; it returns the frontier.
            l_targets[gid] = yield from mu.self_repair(
                set(node.detector.suspected)
            )
        if barrier:
            # Phase 3: wait (bounded) until the poll loop has APPLIED
            # everything installed above, so the caller flips the node
            # live at parity rather than merely in possession of bytes.
            yield from self._frontier_barrier(f_targets, l_targets)
        for origin in origins:
            transport.rearm_flow_control(origin)
        node.probe.catch_up(reason)
        node.probe.member_event("state_xfer", node.name, reason)

    # -- phase 2 helpers -------------------------------------------------

    def _sources(self, origin: str) -> list[str]:
        """Live, unsuspected holders of ``origin``'s ring, preference
        order: the origin's own mirror is authoritative, then any
        peer's replica."""
        node = self.node
        candidates = [origin] + [
            p for p in node.transport.peers if p != origin
        ]
        return [
            source for source in candidates
            if source != node.name
            and not node.detector.is_suspected(source)
            and node.rnode.fabric.nodes[source].alive
        ]

    def _pick_source(self, origin: str) -> Optional[str]:
        """First live, unsuspected holder of ``origin``'s ring."""
        sources = self._sources(origin)
        return sources[0] if sources else None

    def _fill_f_ring(self, origin: str):
        """Windowed bulk fill of our copy of ``origin``'s F ring.

        Walks from the reader head; each missing local slot is served
        from a cached :data:`_WINDOW`-slot one-sided read of the chosen
        source.  Stops at the source's frontier (first index it lacks).
        Returns the number of installed records.
        """
        node = self.node
        cfg = node.config
        transport = node.transport
        reader = transport.f_readers[origin]
        sources = self._sources(origin)
        if not sources:
            return 0
        source = sources[0]
        qp = node.rnode.qp_to(source)
        remote = node.rnode.region_of(source, f_region(origin))
        # Phi mode: hedge each window to the lowest-latency backup
        # replica, so one limping source cannot serialize the whole
        # bulk transfer.  A backup holding fewer records just ends the
        # fill early — the per-slot multi-source repair that follows
        # in run() covers the remainder.
        hedge = cfg.fd_mode == "phi" and len(sources) > 1
        slots, slot_size = cfg.ring_slots, cfg.slot_size
        installed = 0
        index = reader.head
        window: Optional[tuple[int, int, bytes]] = None
        for _ in range(slots):
            offset = (index % slots) * slot_size
            local = reader.region.read(offset, slot_size)
            if parse_record(local, index, slots) is not None:
                index += 1
                continue
            if window is None or not (
                window[0] <= index < window[0] + window[1]
            ):
                start = index % slots
                count = min(_WINDOW, slots - start)
                if hedge:
                    backups = sources[1:]
                    if transport.health is not None:
                        backups = transport.health.rank(backups)
                    wc, _src = yield from transport.hedged_read(
                        [source] + backups[:1], f_region(origin),
                        start * slot_size, count * slot_size,
                        label=f"xfer:{origin}",
                    )
                else:
                    wc = yield from qp.read(
                        remote, start * slot_size, count * slot_size
                    )
                if wc.status is not WcStatus.SUCCESS or wc.data is None:
                    return installed
                window = (index, count, wc.data)
            begin = (index - window[0]) * slot_size
            slot = window[2][begin : begin + slot_size]
            record = parse_record(slot, index, slots)
            if record is None:
                return installed  # the source's frontier
            reader.region.write(offset, bytes(record))
            installed += 1
            index += 1
        return installed

    def _local_frontier(self, reader) -> int:
        """First index past the reader head our local copy lacks."""
        cfg = self.node.config
        slots, slot_size = cfg.ring_slots, cfg.slot_size
        index = reader.head
        for _ in range(slots):
            offset = (index % slots) * slot_size
            slot = reader.region.read(offset, slot_size)
            if parse_record(slot, index, slots) is None:
                return index
            index += 1
        return index

    # -- phase 3 ---------------------------------------------------------

    def _frontier_barrier(self, f_targets: dict[str, int],
                          l_targets: dict[str, int]):
        """Bounded wait until the node *applied* up to every target.

        The poll loop drains the installed records concurrently; this
        barrier only observes reader heads.  The deadline guarantees a
        record blocked on a dependency that can never arrive (e.g. a
        call lost with a crashed issuer) degrades to a late flip, not a
        wedge — the checkers gate the outcome either way.
        """
        node = self.node
        cfg = node.config
        transport = node.transport
        deadline = node.env.now + cfg.xfer_barrier_us
        while node.env.now < deadline:
            f_ok = all(
                transport.f_readers[origin].head >= target
                for origin, target in f_targets.items()
                if origin in transport.f_readers
            )
            l_ok = all(
                transport.l_readers[gid].head >= target
                for gid, target in l_targets.items()
                if gid in transport.l_readers
            )
            if f_ok and l_ok:
                return True
            yield node.env.timeout(cfg.xfer_poll_us)
        return False
