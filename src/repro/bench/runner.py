"""Experiment runner shared by every benchmark (one per paper figure).

``run_experiment`` builds the requested system — ``hamband``, ``mu``
(the SMR deployment), or ``msg`` (message-passing CRDTs) — over a fresh
simulation environment, drives the configured workload, and returns the
paper's metrics.  Repetition and averaging mirror the paper's "repeat
each experiment 3 times and report the average".
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

from ..datatypes import SPEC_FACTORIES
from ..datatypes.orset import orset_spec
from ..msgpass import MsgCrdtCluster
from ..runtime import (
    HambandCluster,
    RuntimeConfig,
    ShardedCluster,
    ShardedRecorder,
    TraceRecorder,
    TxnCoordinator,
)
from ..sim import Environment, FaultInjector, FaultPlan  # noqa: F401
from ..smr import SmrCluster
from ..workload import (
    DriverConfig,
    OpenLoopConfig,
    RunResult,
    ShardedDriverConfig,
    run_open_loop,
    run_sharded_workload,
    run_workload,
)
from ..workload.openloop import build_tier

__all__ = [
    "ChaosRun",
    "ExperimentConfig",
    "ServingRun",
    "TracedRun",
    "average_results",
    "run_chaos",
    "run_experiment",
    "run_serving",
    "run_traced",
]

SYSTEMS = ("hamband", "mu", "msg")


def _spec_factory(workload: str) -> Callable:
    if workload == "orset":
        return orset_spec
    return SPEC_FACTORIES[workload]


@dataclass
class ExperimentConfig:
    system: str  # hamband | mu | msg
    workload: str  # generator / spec name
    n_nodes: int = 4
    total_ops: int = 1200
    update_ratio: float = 0.25
    seed: int = 1
    #: Hamband-only: route reducible methods through F buffers (Fig. 9's
    #: GSet-with-buffers variant).
    force_buffered: bool = False
    #: Heartbeat-suspend this node partway through the run.
    fail_node: Optional[str] = None
    fail_at_fraction: float = 0.3
    #: Hamband-only: override leader placement (ablations).
    leaders: Optional[dict[str, str]] = None
    conf_retry_limit: int = 60
    #: Hamband-only ablation: full causal barrier instead of projected
    #: dependency arrays.
    full_dep_barrier: bool = False
    #: Data-plane wire format: 2 (interned/varint) or 1 (legacy tagged).
    wire_version: int = 2
    #: Checksummed (CRC-trailer) ring records.  Off reverts to the
    #: legacy layout — the negative control for corruption chaos runs.
    ring_integrity: bool = True
    #: Background scrubber tick; 0 (the default) disables the worker.
    scrub_interval_us: float = 0.0
    #: Sharded topology: >1 builds a :class:`ShardedCluster` of
    #: ``n_shards`` independent ``n_nodes``-node shards and drives the
    #: cross-shard bank workload (hamband-only; ``workload`` is ignored
    #: in favour of ``bankmap``).
    n_shards: int = 1
    #: Fraction of conflicting transfer txns in the sharded workload
    #: (the rest are all-commuting payroll deposits).
    txn_mix: float = 0.0
    #: Negative control: route conflicting txns down the uncoordinated
    #: path (expect the cross-shard atomicity check to fail).
    txn_lock_path: bool = True
    #: Failure-detection mode: ``"fixed"`` (byte-stable stale-count
    #: suspicion, the default) or ``"phi"`` (phi-accrual suspicion +
    #: latency-EWMA degraded classification, hedged reads, jittered
    #: retry backoff, and slow-leader demotion — the gray-failure
    #: toolkit).
    fd_mode: str = "fixed"


def _build_cluster(env: Environment, config: ExperimentConfig,
                   probe_factory: Optional[Callable] = None):
    spec = _spec_factory(config.workload)()
    if config.system == "hamband":
        runtime_config = RuntimeConfig(
            force_buffered=config.force_buffered,
            conf_retry_limit=config.conf_retry_limit,
            full_dep_barrier=config.full_dep_barrier,
            wire_version=config.wire_version,
            ring_integrity=config.ring_integrity,
            scrub_interval_us=config.scrub_interval_us,
            seed=config.seed,
            fd_mode=config.fd_mode,
        )
        return HambandCluster.build(
            env,
            spec,
            n_nodes=config.n_nodes,
            config=runtime_config,
            leaders=config.leaders,
            probe_factory=probe_factory,
        )
    if config.system == "mu":
        runtime_config = RuntimeConfig(
            conf_retry_limit=config.conf_retry_limit,
            wire_version=config.wire_version,
            ring_integrity=config.ring_integrity,
            scrub_interval_us=config.scrub_interval_us,
            seed=config.seed,
            fd_mode=config.fd_mode,
        )
        return SmrCluster.build_smr(
            env, spec, n_nodes=config.n_nodes, config=runtime_config,
            probe_factory=probe_factory,
        )
    return MsgCrdtCluster(env, spec, config.n_nodes)


def _driver(config: ExperimentConfig) -> DriverConfig:
    return DriverConfig(
        workload=config.workload,
        total_ops=config.total_ops,
        update_ratio=config.update_ratio,
        seed=config.seed,
        system_label=config.system,
        fail_node=config.fail_node,
        fail_at_fraction=config.fail_at_fraction,
    )


def _build_sharded(env: Environment, config: ExperimentConfig,
                   recorder: Optional[ShardedRecorder] = None,
                   ) -> tuple[ShardedCluster, TxnCoordinator]:
    """A ``bankmap`` sharded topology plus its txn coordinator."""
    if config.system != "hamband":
        raise ValueError(
            f"sharded topologies run the hamband runtime only, "
            f"not {config.system!r}"
        )
    runtime_config = RuntimeConfig(
        force_buffered=config.force_buffered,
        conf_retry_limit=config.conf_retry_limit,
        full_dep_barrier=config.full_dep_barrier,
        wire_version=config.wire_version,
        ring_integrity=config.ring_integrity,
        scrub_interval_us=config.scrub_interval_us,
        seed=config.seed,
        fd_mode=config.fd_mode,
    )
    sharded = ShardedCluster.build(
        env,
        SPEC_FACTORIES["bankmap"](),
        n_shards=config.n_shards,
        n_nodes=config.n_nodes,
        config=runtime_config,
        shard_probe_factory=(
            recorder.probe_factory_for if recorder is not None else None
        ),
        seed=config.seed,
    )
    if recorder is not None:
        recorder.attach(sharded.coordination)
    coordinator = TxnCoordinator(
        sharded, recorder=recorder,
        lock_path_enabled=config.txn_lock_path,
    )
    return sharded, coordinator


def _sharded_driver(config: ExperimentConfig) -> ShardedDriverConfig:
    # total_ops budgets *constituent calls*; the stock txn shapes issue
    # two calls each, so the txn count halves it.
    return ShardedDriverConfig(
        total_txns=max(1, config.total_ops // 2),
        txn_mix=config.txn_mix,
        seed=config.seed,
        system_label=config.system,
    )


def _is_sharded(config: ExperimentConfig) -> bool:
    # n_shards=1 with the sharded-bank workload still runs the sharded
    # driver over a one-shard topology: the apples-to-apples baseline
    # of the shard-count scaling benchmark.
    return config.n_shards > 1 or config.workload == "sharded-bank"


def run_experiment(config: ExperimentConfig) -> RunResult:
    if config.system not in SYSTEMS:
        raise ValueError(f"unknown system {config.system!r}")
    env = Environment()
    if _is_sharded(config):
        sharded, coordinator = _build_sharded(env, config)
        return run_sharded_workload(
            env, sharded, coordinator, _sharded_driver(config)
        )
    cluster = _build_cluster(env, config)
    return run_workload(env, cluster, _driver(config))


@dataclass
class TracedRun:
    """One experiment run with its flight recorder still attached."""

    result: RunResult
    cluster: object
    recorder: TraceRecorder
    #: The txn coordinator of a sharded run (None for single clusters).
    coordinator: object = None
    #: With ``live_check``: the in-run streaming checker and its
    #: verdict (a :class:`~repro.runtime.CheckReport`).
    stream_checker: object = None
    stream_report: object = None
    #: With ``metrics_out``/``progress``: the telemetry emitter
    #: (``emitter.samples`` counts the JSONL lines written).
    emitter: object = None

    def check(self):
        """Run the offline integrity/convergence checker on the trace.

        Sharded runs get the per-shard obligations plus the cross-shard
        atomicity check (:class:`~repro.runtime.ShardedTraceChecker`).
        """
        from ..runtime import ShardedTraceChecker, TraceChecker

        if isinstance(self.recorder, ShardedRecorder):
            checker = ShardedTraceChecker(
                self.cluster.coordination,
                n_shards=self.cluster.n_shards,
            )
            return checker.check_recorder(self.recorder)
        checker = TraceChecker(
            self.cluster.coordination,
            processes=self.cluster.node_names(),
        )
        return checker.check(
            self.recorder.events(), dropped=self.recorder.dropped(),
            gaps=self.recorder.drop_gaps(),
        )


def _instrument(env: Environment, cluster, recorder,
                live_check: bool, metrics_out, metrics_interval_us: float,
                progress, label: str):
    """Attach the in-run streaming checker and/or metrics emitter."""
    checker = None
    emitter = None
    if live_check:
        from ..runtime import StreamingChecker

        if isinstance(recorder, ShardedRecorder):
            raise ValueError(
                "live checking does not support sharded topologies yet "
                "(use the offline ShardedTraceChecker)"
            )
        checker = StreamingChecker(
            cluster.coordination, processes=cluster.node_names()
        )
        recorder.stream_to(checker.feed)
    if metrics_out is not None or progress is not None:
        from ..runtime import MetricsEmitter

        emitter = MetricsEmitter(
            env, cluster=cluster, recorder=recorder, checker=checker,
            interval_us=metrics_interval_us, out=metrics_out,
            progress=progress, label=label,
        ).start()
    return checker, emitter


def run_traced(config: ExperimentConfig,
               capacity: int = 1 << 20,
               live_check: bool = False,
               metrics_out=None,
               metrics_interval_us: float = 200.0,
               progress=None) -> TracedRun:
    """Like :func:`run_experiment`, but with a flight recorder installed.

    Only the Hamband-runtime systems (``hamband``, ``mu``) expose the
    probe seam; the message-passing baseline has nothing to trace.
    ``capacity`` bounds the per-node event ring buffer — size it to the
    run for offline checking (the offline checker refuses truncated
    traces), or keep it small with ``live_check=True``: the streaming
    checker taps events as they are recorded, so its verdict covers the
    whole run even when the ring keeps only a suffix.

    ``metrics_out`` (a path or open file) turns on the periodic
    :class:`~repro.runtime.MetricsEmitter` sampling probe counters,
    phase latencies (p50..p999), and checker progress every
    ``metrics_interval_us`` of sim time; ``progress`` receives a
    one-line status per sample.
    """
    if config.system not in ("hamband", "mu"):
        raise ValueError(
            f"system {config.system!r} has no probe seam to trace"
        )
    env = Environment()
    if _is_sharded(config):
        recorder = ShardedRecorder(
            env, n_shards=config.n_shards, capacity=capacity
        )
        if live_check:
            raise ValueError(
                "live checking does not support sharded topologies yet "
                "(use the offline ShardedTraceChecker)"
            )
        sharded, coordinator = _build_sharded(env, config, recorder)
        _checker, emitter = _instrument(
            env, sharded, recorder, False, metrics_out,
            metrics_interval_us, progress, config.workload,
        )
        result = run_sharded_workload(
            env, sharded, coordinator, _sharded_driver(config)
        )
        if emitter is not None:
            emitter.close()
        return TracedRun(
            result=result, cluster=sharded, recorder=recorder,
            coordinator=coordinator, emitter=emitter,
        )
    recorder = TraceRecorder(env, capacity=capacity)
    cluster = _build_cluster(
        env, config, probe_factory=recorder.probe_factory
    )
    recorder.attach(cluster.coordination)
    checker, emitter = _instrument(
        env, cluster, recorder, live_check, metrics_out,
        metrics_interval_us, progress, config.workload,
    )
    result = run_workload(env, cluster, _driver(config))
    stream_report = checker.finish() if checker is not None else None
    if emitter is not None:
        emitter.close()
    return TracedRun(
        result=result, cluster=cluster, recorder=recorder,
        stream_checker=checker, stream_report=stream_report,
        emitter=emitter,
    )


@dataclass
class ServingRun(TracedRun):
    """An open-loop serving run with its session tier attached.

    ``result.dropped_arrivals`` counts admission shedding;
    ``tier.tenant_stats()`` breaks it down per tenant;
    ``result.slo`` carries attainment when a target was declared.
    """

    tier: object = None
    loop: object = None
    #: With ``plan``: the armed fault injector (gray-SLO scenarios
    #: serve open-loop traffic THROUGH an injected fail-slow window).
    injector: object = None
    plan: object = None


def run_serving(config: ExperimentConfig, loop: OpenLoopConfig,
                capacity: int = 1 << 20,
                live_check: bool = False,
                metrics_out=None,
                metrics_interval_us: float = 200.0,
                progress=None,
                plan: Optional["FaultPlan"] = None) -> ServingRun:
    """Drive the open-loop serving tier over a traced cluster.

    ``config`` picks the system/topology (hamband or mu, single
    cluster); ``loop`` shapes the traffic — offered load, arrival
    curve, session/tenant population, admission caps, SLO target.
    The loop's workload/seed/label are overridden from ``config`` so
    one pair of flags can't drift apart.  ``plan`` optionally arms a
    :class:`FaultInjector` before traffic starts — the gray-failure
    SLO scenario: serve a flash crowd THROUGH a fail-slow window and
    let SLO attainment judge the mitigation stack.
    """
    if config.system not in ("hamband", "mu"):
        raise ValueError(
            f"system {config.system!r} has no probe seam to trace"
        )
    if _is_sharded(config):
        raise ValueError(
            "the serving tier drives single clusters; sharded serving "
            "is future work"
        )
    loop = replace(
        loop,
        workload=config.workload,
        seed=config.seed,
        system_label=config.system,
    )
    env = Environment()
    recorder = TraceRecorder(env, capacity=capacity)
    cluster = _build_cluster(
        env, config, probe_factory=recorder.probe_factory
    )
    recorder.attach(cluster.coordination)
    injector = None
    if plan is not None:
        injector = FaultInjector(plan)
        injector.arm(cluster)
    checker, emitter = _instrument(
        env, cluster, recorder, live_check, metrics_out,
        metrics_interval_us, progress, f"serve:{config.workload}",
    )
    tier = build_tier(loop, config.n_nodes)
    result = run_open_loop(env, cluster, loop, tier=tier)
    stream_report = checker.finish() if checker is not None else None
    if emitter is not None:
        emitter.close()
    return ServingRun(
        result=result, cluster=cluster, recorder=recorder,
        stream_checker=checker, stream_report=stream_report,
        emitter=emitter, tier=tier, loop=loop,
        injector=injector, plan=plan,
    )


@dataclass
class ChaosRun(TracedRun):
    """A traced run with a fault injector armed on the cluster.

    ``result`` is ``None`` when the run failed to quiesce before the
    driver's timeout (a recovery path too broken to finish): the trace
    is still complete, so :meth:`TracedRun.check` remains the gate.
    """

    injector: object = None
    plan: object = None
    #: False when the post-horizon settle window expired before the
    #: cluster reached a stable converged state.
    settled: bool = True


def run_chaos(config: ExperimentConfig, plan: "FaultPlan",
              capacity: int = 1 << 20,
              settle_us: float = 200_000.0,
              live_check: bool = False,
              metrics_out=None,
              metrics_interval_us: float = 200.0,
              progress=None) -> ChaosRun:
    """Drive a workload while a :class:`FaultInjector` executes ``plan``.

    Builds the traced cluster, arms the injector (scheduled faults fire
    by simulated time; window faults intercept RDMA verbs and messages),
    runs the workload, then runs past the plan's horizon and waits for a
    short stable-convergence window.  Neither the settle window nor a
    quiesce timeout raises: the offline :class:`TraceChecker` is the
    gate, so a run whose recovery paths failed completes with a trace
    that the checker rejects (this is what the negative-control test
    relies on).  Background-worker crashes still raise — those are bugs,
    not injected faults.

    Sharded topologies arm the plan against shard 0 only — the victim
    shard — which is exactly the isolation claim the sharded chaos
    preset tests: faults inside one shard must not stall commuting
    transactions on the healthy shards.
    """
    if config.system not in ("hamband", "mu"):
        raise ValueError(
            f"system {config.system!r} has no probe seam to trace"
        )
    if live_check and _is_sharded(config):
        raise ValueError(
            "live checking does not support sharded topologies yet "
            "(use the offline ShardedTraceChecker)"
        )
    env = Environment()
    coordinator = None
    if _is_sharded(config):
        recorder = ShardedRecorder(
            env, n_shards=config.n_shards, capacity=capacity
        )
        cluster, coordinator = _build_sharded(env, config, recorder)
        injector = FaultInjector(plan)
        injector.arm(cluster.shard(0))
    else:
        recorder = TraceRecorder(env, capacity=capacity)
        cluster = _build_cluster(
            env, config, probe_factory=recorder.probe_factory
        )
        recorder.attach(cluster.coordination)
        injector = FaultInjector(plan)
        injector.arm(cluster)
    checker, emitter = _instrument(
        env, cluster, recorder, live_check, metrics_out,
        metrics_interval_us, progress, config.workload,
    )
    result = None
    try:
        if _is_sharded(config):
            result = run_sharded_workload(
                env, cluster, coordinator, _sharded_driver(config)
            )
        else:
            result = run_workload(env, cluster, _driver(config))
    except TimeoutError:
        pass  # non-quiescent run: the checker will call the verdict
    # Run past the fault horizon so late restarts/heals fire even when
    # the workload finished early.
    horizon = plan.horizon_us()
    if env.now < horizon:
        env.run(until=horizon)
    settled = env.run(until=env.process(
        _settle(env, cluster, settle_us), name="chaos:settle"
    ))
    crashed = cluster.failures()
    if crashed:
        raise RuntimeError(f"background workers crashed: {crashed}")
    stream_report = checker.finish() if checker is not None else None
    if emitter is not None:
        emitter.close()
    return ChaosRun(
        result=result,
        cluster=cluster,
        recorder=recorder,
        coordinator=coordinator,
        injector=injector,
        plan=plan,
        settled=bool(settled),
        stream_checker=checker,
        stream_report=stream_report,
        emitter=emitter,
    )


def _settle(env: Environment, cluster, settle_us: float,
            check_every_us: float = 20.0, stable_needed: int = 3):
    """Wait for a few consecutive converged ticks; never raise.

    Returns True once ``stable_needed`` consecutive checks see every
    node at the same applied total and state-equal, False when the
    settle budget runs out first.
    """
    deadline = env.now + settle_us
    stable = 0
    while stable < stable_needed:
        if _totals_agree(cluster) and cluster.converged():
            stable += 1
        else:
            stable = 0
        if env.now > deadline:
            return False
        yield env.timeout(check_every_us)
    return True


def _totals_agree(cluster) -> bool:
    """Every node at the same applied total — per shard for sharded
    topologies (different shards legitimately apply different counts)."""
    shards = getattr(cluster, "shards", None)
    if shards is not None:
        return all(
            len(set(shard.applied_totals().values())) == 1
            for shard in shards
        )
    return len(set(cluster.applied_totals().values())) == 1


def run_averaged(config: ExperimentConfig, repeats: int = 3) -> RunResult:
    """The paper's protocol: repeat and average (distinct seeds)."""
    results = [
        run_experiment(replace(config, seed=config.seed + i))
        for i in range(repeats)
    ]
    return average_results(results)


def average_results(results: list[RunResult]) -> RunResult:
    """Average throughput/latency across repeats (keeps first's shape)."""
    if not results:
        raise ValueError("no results to average")
    base = results[0]
    if len(results) == 1:
        return base
    merged_latency = type(base.latency)()
    for result in results:
        merged_latency.samples.extend(result.latency.samples)
    merged_methods: dict = {}
    for result in results:
        for method, series in result.per_method.items():
            merged_methods.setdefault(method, type(series)()).samples.extend(
                series.samples
            )
    total_duration = sum(r.duration_us for r in results)
    return type(base)(
        system=base.system,
        workload=base.workload,
        n_nodes=base.n_nodes,
        total_calls=sum(r.total_calls for r in results),
        update_calls=sum(r.update_calls for r in results),
        rejected_calls=sum(r.rejected_calls for r in results),
        start_us=0.0,
        replicated_us=total_duration,
        latency=merged_latency,
        per_method=merged_methods,
        dropped_arrivals=sum(r.dropped_arrivals for r in results),
    )
