"""Table/series rendering for the benchmark harness.

Each benchmark prints the rows/series the corresponding paper figure
plots, so ``pytest benchmarks/ --benchmark-only -s`` regenerates the
evaluation section in text form; EXPERIMENTS.md records one captured
copy next to the paper's numbers.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..workload import Histogram, RunResult

__all__ = [
    "fig_header",
    "phase_latency_table",
    "series_table",
    "serving_table",
    "tenant_table",
    "per_method_table",
    "ratio_line",
]


def fig_header(figure: str, caption: str) -> str:
    bar = "=" * 72
    return f"\n{bar}\n{figure}: {caption}\n{bar}"


def series_table(title: str, rows: list[tuple[str, RunResult]],
                 metric: str = "throughput") -> str:
    """One line per configuration: label -> tput and response time."""
    lines = [f"\n-- {title} --"]
    lines.append(
        f"{'config':34s} {'tput (ops/us)':>14s} {'mean rt (us)':>13s} "
        f"{'p95 rt (us)':>12s} {'p99 rt (us)':>12s} {'p999 rt (us)':>13s}"
    )
    for label, result in rows:
        lines.append(
            f"{label:34s} {result.throughput_ops_per_us:14.3f} "
            f"{result.mean_response_us:13.3f} {result.latency.p95:12.3f} "
            f"{result.latency.p99:12.3f} {result.latency.p999:13.3f}"
        )
    return "\n".join(lines)


def per_method_table(title: str, result: RunResult,
                     methods: Optional[list[str]] = None) -> str:
    lines = [f"\n-- {title} --"]
    lines.append(f"{'method':20s} {'mean rt (us)':>13s} {'count':>7s}")
    for method in methods or sorted(result.per_method):
        series = result.per_method.get(method)
        if series is None or series.count == 0:
            continue
        lines.append(f"{method:20s} {series.mean:13.3f} {series.count:7d}")
    return "\n".join(lines)


#: Display order for lifecycle phases in the phase-latency table.
PHASE_ORDER = ("invoke", "propagate", "decide", "apply", "forward")


def phase_latency_table(title: str,
                        phases: Mapping[str, Histogram]) -> str:
    """Per-phase latency columns from a traced run.

    ``phases`` is the output of
    :meth:`~repro.runtime.TraceRecorder.phase_histograms`: the call
    lifecycle broken into invoke (local commit), propagate (ring
    fan-out + reliable broadcast), decide (leader batch replication
    through Mu), apply (remote buffered apply), and forward (control
    plane round trips).
    """
    lines = [f"\n-- {title} --"]
    lines.append(
        f"{'phase':12s} {'count':>7s} {'mean (us)':>10s} "
        f"{'p50 (us)':>9s} {'p95 (us)':>9s} {'p99 (us)':>9s} "
        f"{'p999 (us)':>10s}"
    )
    ordered = [p for p in PHASE_ORDER if p in phases]
    ordered += sorted(set(phases) - set(PHASE_ORDER))
    for phase in ordered:
        histogram = phases[phase]
        if histogram.count == 0:
            continue
        lines.append(
            f"{phase:12s} {histogram.count:7d} {histogram.mean:10.3f} "
            f"{histogram.p50:9.3f} {histogram.p95:9.3f} "
            f"{histogram.p99:9.3f} {histogram.p999:10.3f}"
        )
    return "\n".join(lines)


def serving_table(title: str, rows: list[tuple[str, RunResult]]) -> str:
    """Latency-vs-load rows for open-loop serving runs.

    Adds the serving-tier columns the closed-loop table has no use
    for: dropped arrivals (admission shedding, distinct from rejected
    calls) and the SLO verdict when the run declared a target.
    """
    lines = [f"\n-- {title} --"]
    lines.append(
        f"{'config':30s} {'tput (ops/us)':>14s} {'p50 (us)':>9s} "
        f"{'p99 (us)':>9s} {'p999 (us)':>10s} {'dropped':>8s} "
        f"{'slo':>5s}"
    )
    for label, result in rows:
        slo = "-"
        if result.slo is not None:
            slo = "ok" if result.slo.ok else "MISS"
        lines.append(
            f"{label:30s} {result.throughput_ops_per_us:14.3f} "
            f"{result.latency.p50:9.3f} {result.latency.p99:9.3f} "
            f"{result.latency.p999:10.3f} {result.dropped_arrivals:8d} "
            f"{slo:>5s}"
        )
    return "\n".join(lines)


def tenant_table(title: str, tier) -> str:
    """Per-tenant admission accounting from a
    :class:`~repro.workload.SessionTier`."""
    lines = [f"\n-- {title} --"]
    lines.append(
        f"{'tenant':>6s} {'sessions':>9s} {'admitted':>9s} "
        f"{'dropped':>8s} {'shed %':>7s} {'peak out':>9s}"
    )
    for row in tier.tenant_stats():
        lines.append(
            f"{row.tenant:6d} {row.sessions:9d} {row.admitted:9d} "
            f"{row.dropped:8d} {row.shed_fraction:7.2%} "
            f"{row.peak_outstanding:9d}"
        )
    return "\n".join(lines)


def ratio_line(name: str, numerator: RunResult, denominator: RunResult,
               metric: str = "throughput") -> str:
    if metric == "throughput":
        a = numerator.throughput_ops_per_us
        b = denominator.throughput_ops_per_us
    else:
        a = numerator.mean_response_us
        b = denominator.mean_response_us
    ratio = a / b if b else float("inf")
    return f"{name}: {ratio:.2f}x"
