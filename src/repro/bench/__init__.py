"""Benchmark harness shared by benchmarks/ (one module per figure)."""

from .report import (
    fig_header,
    per_method_table,
    phase_latency_table,
    ratio_line,
    series_table,
    serving_table,
    tenant_table,
)
from .runner import (
    ChaosRun,
    ExperimentConfig,
    ServingRun,
    TracedRun,
    average_results,
    run_averaged,
    run_chaos,
    run_experiment,
    run_serving,
    run_traced,
)

__all__ = [
    "ChaosRun",
    "ExperimentConfig",
    "ServingRun",
    "TracedRun",
    "average_results",
    "fig_header",
    "per_method_table",
    "phase_latency_table",
    "ratio_line",
    "run_averaged",
    "run_chaos",
    "run_experiment",
    "run_serving",
    "run_traced",
    "series_table",
    "serving_table",
    "tenant_table",
]
