"""Benchmark harness shared by benchmarks/ (one module per figure)."""

from .report import fig_header, per_method_table, ratio_line, series_table
from .runner import (
    ExperimentConfig,
    average_results,
    run_averaged,
    run_experiment,
)

__all__ = [
    "ExperimentConfig",
    "average_results",
    "fig_header",
    "per_method_table",
    "ratio_line",
    "run_averaged",
    "run_experiment",
    "series_table",
]
